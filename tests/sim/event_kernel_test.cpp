// Kinetic event-kernel differential: `WorldConfig::event_kernel = true`
// must be observably INERT. The calendar-driven advance skips steps where
// provably nothing happens, but every observable action (link up/down,
// traffic, transfer progress, TTL sweep, router ticks) stays quantized to
// the step_dt grid — so a full community scenario, for EVERY protocol in
// the repository, must produce bit-identical metrics with the kernel on
// and off. Fallback paths (bus/custom movement, legacy_* bench modes) must
// decline the kernel and still match.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/community_detection.hpp"
#include "harness/scenario.hpp"
#include "mobility/community_movement.hpp"
#include "routing/factory.hpp"
#include "sim/world.hpp"

namespace dtn::sim {
namespace {

struct RunSnapshot {
  std::int64_t created = 0;
  std::int64_t delivered = 0;
  std::int64_t relayed = 0;
  std::int64_t transfers_started = 0;
  std::int64_t transfers_aborted = 0;
  std::int64_t dropped = 0;
  std::int64_t expired = 0;
  std::int64_t control_bytes = 0;
  std::int64_t contact_events = 0;
  std::int64_t steps = 0;
  double latency_mean = 0.0;
  double goodput = 0.0;
  double hop_count_mean = 0.0;
};

RunSnapshot snapshot(const World& world) {
  RunSnapshot s;
  s.created = world.metrics().created();
  s.delivered = world.metrics().delivered();
  s.relayed = world.metrics().relayed();
  s.transfers_started = world.metrics().transfers_started();
  s.transfers_aborted = world.metrics().transfers_aborted();
  s.dropped = world.metrics().dropped();
  s.expired = world.metrics().expired();
  s.control_bytes = world.metrics().control_bytes();
  s.contact_events = world.contact_events();
  s.steps = world.step_count();
  s.latency_mean = world.metrics().latency_mean();
  s.goodput = world.metrics().goodput();
  s.hop_count_mean = world.metrics().hop_count_mean();
  return s;
}

void expect_bit_identical(const RunSnapshot& a, const RunSnapshot& b) {
  EXPECT_EQ(a.created, b.created);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.relayed, b.relayed);
  EXPECT_EQ(a.transfers_started, b.transfers_started);
  EXPECT_EQ(a.transfers_aborted, b.transfers_aborted);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.control_bytes, b.control_bytes);
  EXPECT_EQ(a.contact_events, b.contact_events);
  EXPECT_EQ(a.steps, b.steps);
  // Doubles compared with EXPECT_EQ on purpose: the contract is
  // bit-identical, not statistically equivalent.
  EXPECT_EQ(a.latency_mean, b.latency_mean);
  EXPECT_EQ(a.goodput, b.goodput);
  EXPECT_EQ(a.hop_count_mean, b.hop_count_mean);
}

struct CommunityCase {
  int node_count = 24;
  int communities = 3;
  double world_size_m = 900.0;
  double duration_s = 1500.0;
  std::uint64_t seed = 11;
  std::string protocol = "Epidemic";
};

/// Builds the community scenario of world_reuse_test directly on `world`:
/// band-tiled CommunityMovement homes (kinetic-capable lanes) + traffic
/// with a full TTL window.
void build_community(World& world, const CommunityCase& c) {
  const double band = c.world_size_m / static_cast<double>(c.communities);
  std::vector<int> cid(static_cast<std::size_t>(c.node_count));
  for (int v = 0; v < c.node_count; ++v) cid[static_cast<std::size_t>(v)] = v % c.communities;
  auto communities = std::make_shared<const core::CommunityTable>(cid);
  routing::ProtocolConfig protocol;
  protocol.name = c.protocol;
  protocol.copies = 6;
  protocol.communities = communities;
  for (int v = 0; v < c.node_count; ++v) {
    const int community = cid[static_cast<std::size_t>(v)];
    mobility::CommunityMovementParams mp;
    mp.world_min = {0.0, 0.0};
    mp.world_max = {c.world_size_m, c.world_size_m};
    mp.home_min = {band * community, 0.0};
    mp.home_max = {band * (community + 1), c.world_size_m};
    world.add_node(mp, routing::create_router(protocol));
  }
  TrafficParams traffic;
  traffic.ttl = 600.0;
  traffic.stop = c.duration_s - traffic.ttl;
  world.set_traffic(traffic);
}

/// Runs the case fixed-dt and kinetic and requires identical metric bits.
void expect_kernel_inert(const CommunityCase& c) {
  WorldConfig config;
  config.seed = c.seed;

  World fixed(config);
  build_community(fixed, c);
  fixed.run(c.duration_s);
  EXPECT_FALSE(fixed.event_kernel_used());

  config.event_kernel = true;
  World kinetic(config);
  build_community(kinetic, c);
  kinetic.run(c.duration_s);
  EXPECT_TRUE(kinetic.event_kernel_used())
      << "community lanes are closed-form; the kernel must engage";

  expect_bit_identical(snapshot(fixed), snapshot(kinetic));
}

TEST(EventKernel, BitIdenticalAcrossAllProtocolsAndSeeds) {
  for (const std::string& protocol : routing::known_protocols()) {
    for (const std::uint64_t seed : {11ull, 12ull}) {
      SCOPED_TRACE(protocol + "/seed=" + std::to_string(seed));
      CommunityCase c;
      c.protocol = protocol;
      c.seed = seed;
      expect_kernel_inert(c);
    }
  }
}

TEST(EventKernel, SparseWorldStillBitIdentical) {
  // The kernel's reason to exist: a large sparse field where almost every
  // fixed step is dead time. Small-n proxy here (the bench covers scale):
  // few nodes, big world, short radio range — contacts are rare events.
  CommunityCase c;
  c.node_count = 12;
  c.communities = 1;
  c.world_size_m = 2500.0;
  c.duration_s = 3000.0;
  c.seed = 5;
  expect_kernel_inert(c);
}

TEST(EventKernel, ContinuedRunsStayOnTheCalendar) {
  // run() in slices must behave exactly like one long run: the calendar is
  // rebuilt per run() from live World state, so slicing is observable-free.
  CommunityCase c;
  c.seed = 17;
  WorldConfig config;
  config.seed = c.seed;

  World whole(config);
  build_community(whole, c);
  whole.run(c.duration_s);

  config.event_kernel = true;
  World sliced(config);
  build_community(sliced, c);
  sliced.run(500.0);
  EXPECT_TRUE(sliced.event_kernel_used());
  sliced.run(500.0);
  sliced.run(c.duration_s - 1000.0);

  expect_bit_identical(snapshot(whole), snapshot(sliced));
}

TEST(EventKernel, ReseedKeepsTheKernelBitIdentical) {
  CommunityCase c;
  c.seed = 23;
  WorldConfig config;
  config.seed = c.seed;
  World fixed(config);
  build_community(fixed, c);
  fixed.run(c.duration_s);
  const RunSnapshot want = snapshot(fixed);

  config.event_kernel = true;
  World kinetic(config);
  build_community(kinetic, c);
  kinetic.reseed(99);  // scramble, then restore: reuse must not leak
  kinetic.run(c.duration_s);
  kinetic.reseed(c.seed);
  kinetic.run(c.duration_s);
  EXPECT_TRUE(kinetic.event_kernel_used());
  expect_bit_identical(want, snapshot(kinetic));
}

TEST(EventKernel, BusWorkloadFallsBackToFixedDt) {
  // Bus trajectories have no closed-form segment API; event_kernel = true
  // must silently decline and produce the fixed-dt bits.
  harness::BusScenarioParams params;
  params.node_count = 30;
  params.duration_s = 1200.0;
  params.traffic.ttl = 600.0;
  params.seed = 7;
  params.protocol.name = "Epidemic";
  const harness::ScenarioResult fixed = harness::run_bus_scenario(params);

  params.world.event_kernel = true;
  const harness::ScenarioResult declined = harness::run_bus_scenario(params);

  EXPECT_EQ(fixed.metrics.created(), declined.metrics.created());
  EXPECT_EQ(fixed.metrics.delivered(), declined.metrics.delivered());
  EXPECT_EQ(fixed.metrics.relayed(), declined.metrics.relayed());
  EXPECT_EQ(fixed.contact_events, declined.contact_events);
  EXPECT_EQ(fixed.metrics.latency_mean(), declined.metrics.latency_mean());
  EXPECT_EQ(fixed.metrics.goodput(), declined.metrics.goodput());
}

TEST(EventKernel, LegacyBenchPathsDeclineTheKernel) {
  // legacy_* bench modes replay predecessor algorithms step-by-step; the
  // kernel must not engage on top of them.
  CommunityCase c;
  c.duration_s = 300.0;
  WorldConfig config;
  config.seed = c.seed;
  config.event_kernel = true;
  config.legacy_movement_path = true;
  World world(config);
  build_community(world, c);
  world.run(c.duration_s);
  EXPECT_FALSE(world.event_kernel_used());
}

}  // namespace
}  // namespace dtn::sim
