#include "sim/buffer.hpp"

#include <gtest/gtest.h>

#include "../test_support.hpp"

namespace dtn::sim {
namespace {

using test::make_message;

StoredMessage stored(MsgId id, std::int64_t kb = 25, double received_at = 0.0,
                     int replicas = 1) {
  StoredMessage sm;
  sm.msg = make_message(id, 0, 1, 0.0, 1200.0, kb);
  sm.replicas = replicas;
  sm.received_at = received_at;
  return sm;
}

TEST(Buffer, InsertFindErase) {
  Buffer buf(1 << 20);
  buf.insert(stored(7));
  EXPECT_TRUE(buf.has(7));
  EXPECT_EQ(buf.count(), 1u);
  ASSERT_NE(buf.find(7), nullptr);
  EXPECT_EQ(buf.find(7)->msg.id, 7);
  EXPECT_TRUE(buf.erase(7));
  EXPECT_FALSE(buf.has(7));
  EXPECT_FALSE(buf.erase(7));
  EXPECT_EQ(buf.used(), 0);
}

TEST(Buffer, UsedBytesTracked) {
  Buffer buf(1 << 20);
  buf.insert(stored(1, 25));
  buf.insert(stored(2, 100));
  EXPECT_EQ(buf.used(), (25 + 100) * 1024);
  buf.erase(1);
  EXPECT_EQ(buf.used(), 100 * 1024);
  EXPECT_EQ(buf.free_bytes(), (1 << 20) - 100 * 1024);
}

TEST(Buffer, FitsAndAdmissible) {
  Buffer buf(50 * 1024);
  const Message small = make_message(1, 0, 1, 0.0, 1200.0, 25);
  const Message huge = make_message(2, 0, 1, 0.0, 1200.0, 100);
  EXPECT_TRUE(buf.admissible(small));
  EXPECT_FALSE(buf.admissible(huge));
  buf.insert(stored(3, 40));
  EXPECT_FALSE(buf.fits(small));
  EXPECT_TRUE(buf.admissible(small));  // would fit an empty buffer
}

TEST(Buffer, OldestFollowsInsertionOrder) {
  Buffer buf(1 << 20);
  EXPECT_EQ(buf.oldest(), Buffer::kInvalidMsg);
  buf.insert(stored(5));
  buf.insert(stored(6));
  buf.insert(stored(7));
  EXPECT_EQ(buf.oldest(), 5);
  buf.erase(5);
  EXPECT_EQ(buf.oldest(), 6);
}

TEST(Buffer, MessagesIterateInInsertionOrder) {
  Buffer buf(1 << 20);
  for (MsgId id = 10; id < 15; ++id) buf.insert(stored(id));
  MsgId expected = 10;
  for (const auto& sm : buf.messages()) {
    EXPECT_EQ(sm.msg.id, expected++);
  }
}

TEST(Buffer, FindPointerAllowsInPlaceUpdate) {
  Buffer buf(1 << 20);
  buf.insert(stored(1, 25, 0.0, 10));
  StoredMessage* sm = buf.find(1);
  ASSERT_NE(sm, nullptr);
  sm->replicas -= 4;
  EXPECT_EQ(buf.find(1)->replicas, 6);
}

TEST(Buffer, ExpiredIds) {
  Buffer buf(1 << 20);
  StoredMessage a = stored(1);
  a.msg.created = 0.0;
  a.msg.ttl = 100.0;
  StoredMessage b = stored(2);
  b.msg.created = 0.0;
  b.msg.ttl = 1000.0;
  buf.insert(a);
  buf.insert(b);
  EXPECT_TRUE(buf.expired_ids(50.0).empty());
  EXPECT_EQ(buf.expired_ids(100.0), (std::vector<MsgId>{1}));
  EXPECT_EQ(buf.expired_ids(2000.0).size(), 2u);
}

TEST(Buffer, EmptyState) {
  Buffer buf(1024);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.count(), 0u);
  EXPECT_EQ(buf.find(1), nullptr);
  const Buffer& cref = buf;
  EXPECT_EQ(cref.find(1), nullptr);
}

}  // namespace
}  // namespace dtn::sim
