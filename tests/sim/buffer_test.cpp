#include "sim/buffer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../test_support.hpp"

namespace dtn::sim {
namespace {

using test::make_message;

StoredMessage stored(MsgId id, std::int64_t kb = 25, double received_at = 0.0,
                     int replicas = 1) {
  StoredMessage sm;
  sm.msg = make_message(id, 0, 1, 0.0, 1200.0, kb);
  sm.replicas = replicas;
  sm.received_at = received_at;
  return sm;
}

/// Every API-level test runs against both store implementations: the slab
/// (production) and the seed's list+map (legacy_store benchmark mode).
class BufferModes : public ::testing::TestWithParam<bool> {
 protected:
  [[nodiscard]] Buffer make(std::int64_t capacity) const {
    return Buffer(capacity, /*legacy_store=*/GetParam());
  }
};

INSTANTIATE_TEST_SUITE_P(SlabAndLegacy, BufferModes, ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "legacy" : "slab";
                         });

TEST_P(BufferModes, InsertFindErase) {
  Buffer buf = make(1 << 20);
  buf.insert(stored(7));
  EXPECT_TRUE(buf.contains(7));
  EXPECT_TRUE(buf.has(7));  // compat alias
  EXPECT_EQ(buf.count(), 1u);
  ASSERT_NE(buf.find(7), nullptr);
  EXPECT_EQ(buf.find(7)->msg.id, 7);
  EXPECT_TRUE(buf.erase(7));
  EXPECT_FALSE(buf.contains(7));
  EXPECT_FALSE(buf.erase(7));
  EXPECT_EQ(buf.used(), 0);
}

TEST_P(BufferModes, UsedBytesTracked) {
  Buffer buf = make(1 << 20);
  buf.insert(stored(1, 25));
  buf.insert(stored(2, 100));
  EXPECT_EQ(buf.used(), (25 + 100) * 1024);
  buf.erase(1);
  EXPECT_EQ(buf.used(), 100 * 1024);
  EXPECT_EQ(buf.free_bytes(), (1 << 20) - 100 * 1024);
}

TEST_P(BufferModes, FitsAndAdmissible) {
  Buffer buf = make(50 * 1024);
  const Message small = make_message(1, 0, 1, 0.0, 1200.0, 25);
  const Message huge = make_message(2, 0, 1, 0.0, 1200.0, 100);
  EXPECT_TRUE(buf.admissible(small));
  EXPECT_FALSE(buf.admissible(huge));
  buf.insert(stored(3, 40));
  EXPECT_FALSE(buf.fits(small));
  EXPECT_TRUE(buf.admissible(small));  // would fit an empty buffer
}

TEST_P(BufferModes, OldestAndNewestFollowInsertionOrder) {
  Buffer buf = make(1 << 20);
  EXPECT_EQ(buf.oldest(), Buffer::kInvalidMsg);
  EXPECT_EQ(buf.newest(), Buffer::kInvalidMsg);
  buf.insert(stored(5));
  buf.insert(stored(6));
  buf.insert(stored(7));
  EXPECT_EQ(buf.oldest(), 5);
  EXPECT_EQ(buf.newest(), 7);
  buf.erase(5);
  EXPECT_EQ(buf.oldest(), 6);
  buf.erase(7);
  EXPECT_EQ(buf.newest(), 6);
}

TEST_P(BufferModes, IteratesInInsertionOrder) {
  Buffer buf = make(1 << 20);
  for (MsgId id = 10; id < 15; ++id) buf.insert(stored(id));
  MsgId expected = 10;
  for (const auto& sm : buf) {
    EXPECT_EQ(sm.msg.id, expected++);
  }
  EXPECT_EQ(expected, 15);
  // Order survives a middle erase and a subsequent insert (slot recycling
  // must not perturb the order links).
  buf.erase(12);
  buf.insert(stored(20));
  std::vector<MsgId> order;
  for (const auto& sm : buf) order.push_back(sm.msg.id);
  EXPECT_EQ(order, (std::vector<MsgId>{10, 11, 13, 14, 20}));
}

TEST_P(BufferModes, MutableIterationUpdatesInPlace) {
  Buffer buf = make(1 << 20);
  buf.insert(stored(1, 25, 0.0, 4));
  buf.insert(stored(2, 25, 0.0, 4));
  for (auto& sm : buf) sm.replicas /= 2;
  EXPECT_EQ(buf.find(1)->replicas, 2);
  EXPECT_EQ(buf.find(2)->replicas, 2);
}

TEST_P(BufferModes, FindPointerAllowsInPlaceUpdate) {
  Buffer buf = make(1 << 20);
  buf.insert(stored(1, 25, 0.0, 10));
  StoredMessage* sm = buf.find(1);
  ASSERT_NE(sm, nullptr);
  sm->replicas -= 4;
  EXPECT_EQ(buf.find(1)->replicas, 6);
}

TEST_P(BufferModes, ExpiredInto) {
  Buffer buf = make(1 << 20);
  StoredMessage a = stored(1);
  a.msg.created = 0.0;
  a.msg.ttl = 100.0;
  StoredMessage b = stored(2);
  b.msg.created = 0.0;
  b.msg.ttl = 1000.0;
  buf.insert(a);
  buf.insert(b);
  std::vector<MsgId> out{99};  // pre-dirtied: expired_into must clear it
  buf.expired_into(50.0, out);
  EXPECT_TRUE(out.empty());
  buf.expired_into(100.0, out);
  EXPECT_EQ(out, (std::vector<MsgId>{1}));
  buf.expired_into(2000.0, out);
  EXPECT_EQ(out.size(), 2u);
}

TEST_P(BufferModes, EmptyState) {
  Buffer buf = make(1024);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.count(), 0u);
  EXPECT_EQ(buf.find(1), nullptr);
  EXPECT_EQ(buf.begin(), buf.end());
  const Buffer& cref = buf;
  EXPECT_EQ(cref.find(1), nullptr);
  EXPECT_EQ(cref.begin(), cref.end());
}

// ---- slab-only surface ----

TEST(BufferSlab, HandlesResolveAndTrackOrder) {
  Buffer buf(1 << 20);
  buf.insert(stored(3));
  buf.insert(stored(4));
  const Buffer::Handle h3 = buf.handle_of(3);
  const Buffer::Handle h4 = buf.handle_of(4);
  ASSERT_NE(h3, Buffer::kNoHandle);
  ASSERT_NE(h4, Buffer::kNoHandle);
  EXPECT_EQ(buf.front_handle(), h3);
  EXPECT_EQ(buf.next_handle(h3), h4);
  EXPECT_EQ(buf.next_handle(h4), Buffer::kNoHandle);
  EXPECT_EQ(buf.get(h4).msg.id, 4);
  buf.get(h4).replicas = 9;
  EXPECT_EQ(buf.find(4)->replicas, 9);
  EXPECT_EQ(buf.handle_of(99), Buffer::kNoHandle);
}

TEST(BufferSlab, IteratorExposesHandle) {
  Buffer buf(1 << 20);
  buf.insert(stored(1));
  buf.insert(stored(2));
  auto it = buf.begin();
  EXPECT_EQ(it.handle(), buf.handle_of(1));
  ++it;
  EXPECT_EQ(it.handle(), buf.handle_of(2));
  ++it;
  EXPECT_EQ(it, buf.end());
}

TEST(BufferSlab, SlotsAreRecycled) {
  Buffer buf(1 << 20);
  for (MsgId id = 0; id < 8; ++id) buf.insert(stored(id));
  const std::size_t high_water = buf.slot_capacity();
  EXPECT_EQ(high_water, 8u);
  // Churn far past the high-water count: the slab must reuse freed slots
  // instead of growing.
  for (MsgId id = 8; id < 500; ++id) {
    buf.erase(id - 8);
    buf.insert(stored(id));
  }
  EXPECT_EQ(buf.count(), 8u);
  EXPECT_EQ(buf.slot_capacity(), high_water);
}

}  // namespace
}  // namespace dtn::sim
