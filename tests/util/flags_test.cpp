#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace dtn::util {
namespace {

Flags parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  argv.reserve(storage.size());
  for (auto& s : storage) argv.push_back(s.data());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags f = parse({"--nodes=120", "--alpha=0.28"});
  EXPECT_EQ(f.get_int("nodes", 0), 120);
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 0.0), 0.28);
}

TEST(Flags, SpaceForm) {
  const Flags f = parse({"--protocol", "EER", "--seeds", "5"});
  EXPECT_EQ(f.get_string("protocol", ""), "EER");
  EXPECT_EQ(f.get_int("seeds", 0), 5);
}

TEST(Flags, BareBoolean) {
  const Flags f = parse({"--verbose", "--quick"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_TRUE(f.get_bool("quick", false));
  EXPECT_FALSE(f.get_bool("absent", false));
}

TEST(Flags, BooleanValues) {
  const Flags f = parse({"--a=true", "--b=false", "--c=1", "--d=no"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Flags, FallbacksWhenMissingOrMalformed) {
  const Flags f = parse({"--n=abc"});
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("n", 1.5), 1.5);
  EXPECT_EQ(f.get_int("missing", -1), -1);
}

TEST(Flags, PositionalPreserved) {
  const Flags f = parse({"input.txt", "--x=1", "more"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(Flags, HasAndSet) {
  Flags f = parse({"--x=1"});
  EXPECT_TRUE(f.has("x"));
  EXPECT_FALSE(f.has("y"));
  f.set("y", "2");
  EXPECT_TRUE(f.has("y"));
  EXPECT_EQ(f.get_int("y", 0), 2);
}

TEST(Flags, RepeatedFlagKeepsAllValuesInOrder) {
  const Flags f = parse({"--set", "a=1", "--set=b=2", "--other", "x", "--set", "c=3"});
  const auto values = f.get_list("set");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], "a=1");
  EXPECT_EQ(values[1], "b=2");
  EXPECT_EQ(values[2], "c=3");
  // Scalar getters see the last occurrence; absent flags give empty lists.
  EXPECT_EQ(f.get_string("set", ""), "c=3");
  EXPECT_TRUE(f.get_list("absent").empty());
}

TEST(Flags, UnknownFlagsScan) {
  const Flags f = parse({"--set", "a=1", "--sed", "b=2", "--quiet"});
  const auto offenders = f.unknown_flags({"set", "quiet"});
  ASSERT_EQ(offenders.size(), 1u);
  EXPECT_EQ(offenders[0], "sed");
  EXPECT_TRUE(f.unknown_flags({"set", "sed", "quiet"}).empty());
}

TEST(SplitCsv, TokensAndEdgeCases) {
  const auto tokens = split_csv("EER,CR,,EBR");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "EER");
  EXPECT_EQ(tokens[1], "CR");
  EXPECT_EQ(tokens[2], "EBR");
  EXPECT_TRUE(split_csv("").empty());
  EXPECT_TRUE(split_csv(",,").empty());
  EXPECT_EQ(split_csv("solo").size(), 1u);
}

TEST(EnvInt, ReadsAndFallsBack) {
  ::setenv("DTN_TEST_ENV_INT", "42", 1);
  EXPECT_EQ(env_int("DTN_TEST_ENV_INT", 0), 42);
  ::setenv("DTN_TEST_ENV_INT", "junk", 1);
  EXPECT_EQ(env_int("DTN_TEST_ENV_INT", 9), 9);
  ::unsetenv("DTN_TEST_ENV_INT");
  EXPECT_EQ(env_int("DTN_TEST_ENV_INT", 3), 3);
}

TEST(EnvString, PresentAndAbsent) {
  ::setenv("DTN_TEST_ENV_STR", "hello", 1);
  EXPECT_EQ(env_string("DTN_TEST_ENV_STR").value(), "hello");
  ::unsetenv("DTN_TEST_ENV_STR");
  EXPECT_FALSE(env_string("DTN_TEST_ENV_STR").has_value());
}

}  // namespace
}  // namespace dtn::util
