// util::Subprocess — the process-management substrate of the `dtnsim
// sweep --workers` fabric. Pins exactly the lifecycle facts the campaign
// supervisor depends on: exit codes propagate, signal deaths are
// distinguishable from exits, exec failure surfaces as the conventional
// 127, kill_hard() reliably terminates a live child, and terminal status
// is latched across polls.
#include <gtest/gtest.h>

#if !defined(_WIN32)

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "util/subprocess.hpp"

namespace dtn::util {
namespace {

std::vector<std::string> sh(const std::string& script) {
  return {"/bin/sh", "-c", script};
}

ProcessStatus wait_terminal(Subprocess& proc) {
  // poll() until terminal (bounded), so the non-blocking path — the one
  // the supervisor actually uses — is what gets exercised.
  for (int i = 0; i < 2000; ++i) {
    const ProcessStatus status = proc.poll();
    if (!status.running) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ADD_FAILURE() << "child did not terminate within the poll budget";
  return proc.poll();
}

TEST(SubprocessTest, ExitCodesPropagate) {
  Subprocess ok;
  std::string error;
  ASSERT_TRUE(ok.spawn(sh("exit 0"), /*discard_stdout=*/true, &error)) << error;
  ProcessStatus status = ok.wait();
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.exit_code, 0);
  EXPECT_FALSE(status.signaled);

  Subprocess seven;
  ASSERT_TRUE(seven.spawn(sh("exit 7"), true, &error)) << error;
  status = wait_terminal(seven);
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.exit_code, 7);
}

TEST(SubprocessTest, SignalDeathIsDistinguishedFromExit) {
  Subprocess proc;
  std::string error;
  ASSERT_TRUE(proc.spawn(sh("kill -KILL $$"), true, &error)) << error;
  const ProcessStatus status = wait_terminal(proc);
  EXPECT_TRUE(status.signaled);
  EXPECT_FALSE(status.exited);
  EXPECT_EQ(status.term_signal, 9);
}

TEST(SubprocessTest, ExecFailureSurfacesAs127) {
  Subprocess proc;
  std::string error;
  ASSERT_TRUE(proc.spawn({"/nonexistent/not-a-binary"}, true, &error)) << error;
  const ProcessStatus status = wait_terminal(proc);
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.exit_code, 127);
}

TEST(SubprocessTest, KillHardTerminatesALiveChild) {
  Subprocess proc;
  std::string error;
  ASSERT_TRUE(proc.spawn(sh("sleep 30"), true, &error)) << error;
  EXPECT_TRUE(proc.poll().running);
  proc.kill_hard();
  const ProcessStatus status = proc.wait();
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.term_signal, 9);
}

TEST(SubprocessTest, TerminalStatusIsLatched) {
  Subprocess proc;
  std::string error;
  ASSERT_TRUE(proc.spawn(sh("exit 3"), true, &error)) << error;
  const ProcessStatus first = wait_terminal(proc);
  const ProcessStatus again = proc.poll();
  EXPECT_EQ(again.exited, first.exited);
  EXPECT_EQ(again.exit_code, first.exit_code);
  // A reaped child frees the slot: the same Subprocess may spawn again.
  ASSERT_TRUE(proc.spawn(sh("exit 0"), true, &error)) << error;
  EXPECT_EQ(wait_terminal(proc).exit_code, 0);
}

TEST(SubprocessTest, SpawnRejectsBadRequests) {
  Subprocess proc;
  std::string error;
  EXPECT_FALSE(proc.spawn({}, true, &error));
  EXPECT_FALSE(error.empty());
  ASSERT_TRUE(proc.spawn(sh("sleep 30"), true, &error)) << error;
  // Spawning over a live child must be refused, not leak it.
  EXPECT_FALSE(proc.spawn(sh("exit 0"), true, &error));
  proc.kill_hard();
  proc.wait();
}

TEST(SubprocessTest, SelfExePathResolves) {
  const std::string exe = self_exe_path();
  ASSERT_FALSE(exe.empty());
  EXPECT_EQ(exe.front(), '/');
  // It names THIS test binary.
  EXPECT_NE(exe.find("subprocess_test"), std::string::npos) << exe;
}

TEST(SubprocessTest, ResolveExecutableCoversArgv0Shapes) {
  // Absolute argv[0] passes through untouched.
  EXPECT_EQ(resolve_executable("/bin/sh"), "/bin/sh");
  // A bare name walks $PATH like the launching shell did; `sh` exists on
  // every POSIX host this fabric runs on, and the result is absolute.
  const std::string sh_path = resolve_executable("sh");
  ASSERT_FALSE(sh_path.empty());
  EXPECT_EQ(sh_path.front(), '/');
  // Nothing resolvable -> empty, never a guess.
  EXPECT_EQ(resolve_executable(""), "");
  EXPECT_EQ(resolve_executable("definitely-not-a-real-binary-name-xyzzy"), "");
  EXPECT_EQ(resolve_executable("./definitely/not/a/real/relative-path"), "");
  // The argv[0] fallback kicks in only when /proc is unusable, but it
  // must agree with the real answer when handed the real path.
  EXPECT_EQ(self_exe_path(self_exe_path()), self_exe_path());
}

}  // namespace
}  // namespace dtn::util

#endif  // !_WIN32
