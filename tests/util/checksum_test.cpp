// CRC-32 (util/checksum.hpp): reference vectors, incremental == one-shot,
// and sensitivity properties the journal recovery path depends on.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/checksum.hpp"

namespace dtn::util {
namespace {

TEST(Checksum, ReferenceVectors) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc"), 0x352441C2u);
}

TEST(Checksum, IncrementalMatchesOneShot) {
  const std::string data = "the journal frames records with %DTNJ1 headers";
  std::uint32_t crc = crc32_init();
  // Feed byte by byte — worst-case chunking.
  for (const char c : data) crc = crc32_update(crc, &c, 1);
  EXPECT_EQ(crc32_final(crc), crc32(data));

  // And in two uneven chunks.
  crc = crc32_init();
  crc = crc32_update(crc, data.data(), 7);
  crc = crc32_update(crc, data.data() + 7, data.size() - 7);
  EXPECT_EQ(crc32_final(crc), crc32(data));
}

TEST(Checksum, DetectsSingleBitFlips) {
  // The journal uses the CRC to reject corrupt records; every single-bit
  // flip of a small payload must change the checksum (CRC-32 guarantees
  // this for messages far longer than we test here).
  const std::string base = "point 3 ok 2 1.5";
  const std::uint32_t want = crc32(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = base;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      EXPECT_NE(crc32(mutated), want) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Checksum, EmbeddedNulBytesParticipate) {
  const char with_nul[] = {'a', '\0', 'b'};
  const char without[] = {'a', 'b'};
  EXPECT_NE(crc32(std::string_view(with_nul, 3)),
            crc32(std::string_view(without, 2)));
}

}  // namespace
}  // namespace dtn::util
