#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dtn::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(64);
  ThreadPool::parallel_for(64, 4, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ZeroIterationsNoop) {
  ThreadPool::parallel_for(0, 2, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, ResultsMatchSerial) {
  std::vector<double> out(100, 0.0);
  ThreadPool::parallel_for(out.size(), 3,
                           [&](std::size_t i) { out[i] = static_cast<double>(i) * i; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * i);
  }
}

TEST(ParallelFor, ChunkedDispatchCoversLargeRangeExactlyOnce) {
  // Large n forces chunk sizes > 1; every index must still be visited
  // exactly once across all participants.
  constexpr std::size_t kN = 200000;
  std::vector<std::uint8_t> visits(kN, 0);
  std::atomic<std::size_t> total{0};
  ThreadPool::parallel_for(kN, 8, [&](std::size_t i) {
    ++visits[i];  // distinct index per call: no data race
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i], 1u) << "index " << i;
  }
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ThreadPool::parallel_for(64, 4,
                               [&](std::size_t i) {
                                 ran.fetch_add(1);
                                 if (i == 7) throw std::runtime_error("boom");
                               }),
      std::runtime_error);
  // The failing index ran; unclaimed chunks after the failure may be
  // cancelled, so at most every index ran.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 64);
}

TEST(ParallelFor, ExceptionPropagatesFromInlineSmallN) {
  EXPECT_THROW(ThreadPool::parallel_for(
                   1, 8, [](std::size_t) { throw std::runtime_error("tiny"); }),
               std::runtime_error);
}

TEST(ParallelFor, WorkerSlotsAreDenseAndBounded) {
  constexpr std::size_t kWorkers = 3;
  std::vector<std::atomic<int>> slot_hits(kWorkers);
  ThreadPool::shared().parallel_for(256, kWorkers, [&](std::size_t worker, std::size_t) {
    ASSERT_LT(worker, kWorkers);
    slot_hits[worker].fetch_add(1);
  });
  int total = 0;
  for (const auto& h : slot_hits) total += h.load();
  EXPECT_EQ(total, 256);
  // (Which slots claimed chunks is scheduling-dependent — the caller may
  // legitimately get zero when pool workers drain the range first.)
}

TEST(ParallelFor, BackToBackJobsOnSharedPool) {
  // Generation bookkeeping: workers must re-join every new job.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    ThreadPool::shared().parallel_for(
        17, 4, [&](std::size_t, std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 17) << "round " << round;
  }
}

TEST(ParallelFor, ContentionStressManyTinyTasks) {
  // Tiny per-index work maximizes pressure on the atomic cursor and the
  // join/leave bookkeeping; concurrent submit() traffic runs alongside.
  ThreadPool& pool = ThreadPool::shared();
  std::atomic<std::uint64_t> sum{0};
  auto side = pool.submit([] { return 41; });
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::uint64_t> local{0};
    pool.parallel_for(5000, 8, [&](std::size_t, std::size_t i) {
      local.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(local.load(), 5000ull * 4999ull / 2ull) << "round " << round;
    sum.fetch_add(local.load());
  }
  EXPECT_EQ(side.get(), 41);
  EXPECT_EQ(sum.load(), 20ull * (5000ull * 4999ull / 2ull));
}

TEST(ParallelFor, NestedCallsOnSamePoolRunInline) {
  // A body that parallelizes on the same pool must not deadlock on the
  // dispatch lock — nested calls run inline on the calling participant
  // (the throwaway-pool-per-call era supported nesting; so must this).
  std::atomic<int> inner_total{0};
  ThreadPool::shared().parallel_for(16, 4, [&](std::size_t, std::size_t) {
    ThreadPool::shared().parallel_for(
        8, 4, [&](std::size_t, std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 16 * 8);
  // Static-form nesting resolves through the shared pool too.
  std::atomic<int> static_total{0};
  ThreadPool::parallel_for(9, 3, [&](std::size_t) {
    ThreadPool::parallel_for(5, 3,
                             [&](std::size_t) { static_total.fetch_add(1); });
  });
  EXPECT_EQ(static_total.load(), 9 * 5);
}

TEST(ParallelFor, ConcurrentCallsFromMultipleThreadsSerialize) {
  // Two user threads race whole parallel_for calls on the shared pool; the
  // dispatch mutex must keep each job's accounting intact.
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread other([&] {
    ThreadPool::shared().parallel_for(
        300, 4, [&](std::size_t, std::size_t) { b.fetch_add(1); });
  });
  ThreadPool::shared().parallel_for(300, 4,
                                    [&](std::size_t, std::size_t) { a.fetch_add(1); });
  other.join();
  EXPECT_EQ(a.load(), 300);
  EXPECT_EQ(b.load(), 300);
}

}  // namespace
}  // namespace dtn::util
