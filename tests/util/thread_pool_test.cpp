#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dtn::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(64);
  ThreadPool::parallel_for(64, 4, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ZeroIterationsNoop) {
  ThreadPool::parallel_for(0, 2, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, ResultsMatchSerial) {
  std::vector<double> out(100, 0.0);
  ThreadPool::parallel_for(out.size(), 3,
                           [&](std::size_t i) { out[i] = static_cast<double>(i) * i; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * i);
  }
}

}  // namespace
}  // namespace dtn::util
