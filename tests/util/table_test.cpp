#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dtn::util {
namespace {

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter t({"name", "value"});
  t.new_row().add_cell(std::string("alpha")).add_cell(0.28, 2);
  t.new_row().add_cell(std::string("lambda")).add_cell(static_cast<long long>(10));
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("0.28"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinter, AddCellWithoutRowStartsOne) {
  TablePrinter t({"a"});
  t.add_cell(std::string("x"));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TablePrinter, ColumnsAligned) {
  TablePrinter t({"p", "q"});
  t.new_row().add_cell(std::string("longvalue")).add_cell(std::string("1"));
  t.new_row().add_cell(std::string("s")).add_cell(std::string("2"));
  std::istringstream lines(t.to_string());
  std::string header;
  std::string rule;
  std::string row1;
  std::string row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  // The second column starts at the same offset in both rows.
  EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 4), "1.0000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(CsvWriter, EscapesSpecialCells) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/dtn_csv_test.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.ok());
    w.write_row({"h1", "h2"});
    w.write_row({"1", "a,b"});
    EXPECT_TRUE(w.ok());
  }
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "h1,h2");
  EXPECT_EQ(line2, "1,\"a,b\"");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dtn::util
