#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dtn::util {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(42, 7);
  Pcg32 b(42, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(1, 1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Pcg32, UniformRespectsBounds) {
  Pcg32 rng(3, 3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Pcg32, UniformIntCoversRangeInclusive) {
  Pcg32 rng(5, 5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 10k draws
}

TEST(Pcg32, UniformIntDegenerateRange) {
  Pcg32 rng(5, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(9, 9), 9);
  }
}

TEST(Pcg32, UniformIntApproximatelyUniform) {
  Pcg32 rng(11, 13);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 100);  // within 10% relative
  }
}

TEST(Pcg32, ExponentialHasRequestedMean) {
  Pcg32 rng(17, 19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(30.0);
  EXPECT_NEAR(sum / n, 30.0, 0.5);
}

TEST(Pcg32, ExponentialNonNegative) {
  Pcg32 rng(21, 23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.exponential(5.0), 0.0);
  }
}

TEST(Pcg32, NormalMomentsMatch) {
  Pcg32 rng(29, 31);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Pcg32, BernoulliEdgeCases) {
  Pcg32 rng(1, 2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Pcg32, BernoulliFrequency) {
  Pcg32 rng(7, 11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(DeriveStream, IndependentPerEntity) {
  Pcg32 a = derive_stream(100, 0, StreamPurpose::kMovement);
  Pcg32 b = derive_stream(100, 1, StreamPurpose::kMovement);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(DeriveStream, IndependentPerPurpose) {
  Pcg32 a = derive_stream(100, 0, StreamPurpose::kMovement);
  Pcg32 b = derive_stream(100, 0, StreamPurpose::kTraffic);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(DeriveStream, ReproducibleAcrossCalls) {
  Pcg32 a = derive_stream(100, 5, StreamPurpose::kRouting);
  Pcg32 b = derive_stream(100, 5, StreamPurpose::kRouting);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(HashLabel, StableAndDistinct) {
  EXPECT_EQ(hash_label("alpha"), hash_label("alpha"));
  EXPECT_NE(hash_label("alpha"), hash_label("beta"));
  EXPECT_NE(hash_label(""), hash_label("a"));
}

class UniformIntRangeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(UniformIntRangeTest, AlwaysInRange) {
  const auto [lo, hi] = GetParam();
  Pcg32 rng(123, 456);
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformIntRangeTest,
                         ::testing::Values(std::pair{0, 1}, std::pair{-10, 10},
                                           std::pair{0, 239}, std::pair{1000, 1001},
                                           std::pair{-5, -5}));

}  // namespace
}  // namespace dtn::util
