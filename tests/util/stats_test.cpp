#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dtn::util {
namespace {

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  EXPECT_DOUBLE_EQ(acc.max(), 0.0);
}

TEST(StatAccumulator, SingleValue) {
  StatAccumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(StatAccumulator, KnownMoments) {
  StatAccumulator acc;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(StatAccumulator, MergeMatchesSequential) {
  std::vector<double> data;
  for (int i = 0; i < 100; ++i) data.push_back(std::sin(i) * 10.0 + i);
  StatAccumulator whole;
  StatAccumulator left;
  StatAccumulator right;
  for (std::size_t i = 0; i < data.size(); ++i) {
    whole.add(data[i]);
    (i < 37 ? left : right).add(data[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(StatAccumulator, MergeWithEmptySides) {
  StatAccumulator a;
  StatAccumulator b;
  a.add(1.0);
  a.add(3.0);
  StatAccumulator a_copy = a;
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs: adopt rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(StatAccumulator, ResetClears) {
  StatAccumulator acc;
  acc.add(42.0);
  acc.reset();
  EXPECT_TRUE(acc.empty());
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(StatAccumulator, NumericallyStableLargeOffset) {
  // Welford should keep precision with a large constant offset.
  StatAccumulator acc;
  const double offset = 1e9;
  for (const double v : {1.0, 2.0, 3.0}) acc.add(offset + v);
  EXPECT_NEAR(acc.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(15.0);   // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 25.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 75.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 100.0);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  for (int i = 0; i < 1000; ++i) h.add((i + 0.5) / 1000.0);
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileEmpty) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(Histogram, ZeroBinRequestsGetOne) {
  Histogram h(0.0, 1.0, 0);
  EXPECT_EQ(h.bins(), 1u);
  h.add(0.5);
  EXPECT_EQ(h.bin_count(0), 1u);
}

}  // namespace
}  // namespace dtn::util
