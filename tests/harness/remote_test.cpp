// The campaign-fabric vocabulary (harness/remote.hpp): HELLO/ASSIGN/
// PROGRESS payload round-trips, the campaign-fingerprint digest the
// foreign-refusal rests on, and the driver-side shard-journal audit that
// decides what a fleet --resume may skip.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/remote.hpp"
#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"
#include "util/checksum.hpp"

namespace {

using namespace dtn;

harness::SpecSweepOptions fixture_options() {
  harness::SpecSweepOptions options;
  options.base = harness::parse_spec(R"(
scenario.name = remote_fixture
scenario.duration = 400
scenario.seed = 7
map.kind = open_field
map.width = 120
map.height = 120
group.walkers.model = random_waypoint
group.walkers.count = 6
group.walkers.speed_min = 1
group.walkers.speed_max = 3
world.radio_range = 40
protocol.name = EER
protocol.copies = 4
communities.count = 2
traffic.interval_min = 20
traffic.interval_max = 30
traffic.ttl = 120
)");
  harness::SweepAxis axis;
  axis.key = "protocol.copies";
  axis.values = {"2", "4"};
  options.axes.push_back(axis);
  options.seeds = 2;
  options.seed_base = 7;
  options.isolate_failures = true;
  return options;
}

TEST(RemoteHello, RoundTripsTheFingerprintDigest) {
  const std::string fingerprint =
      harness::sweep_campaign_fingerprint(fixture_options());
  ASSERT_FALSE(fingerprint.empty());
  const std::string payload = harness::serialize_sweep_hello(fingerprint);
  std::uint64_t len = 0;
  std::uint32_t crc = 0;
  std::string error;
  ASSERT_TRUE(harness::parse_sweep_hello(payload, &len, &crc, &error)) << error;
  EXPECT_EQ(len, fingerprint.size());
  EXPECT_EQ(crc, util::crc32(fingerprint));
}

TEST(RemoteHello, RejectsForeignVersionAndGarbage) {
  std::uint64_t len = 0;
  std::uint32_t crc = 0;
  std::string error;
  EXPECT_FALSE(harness::parse_sweep_hello("", &len, &crc, &error));
  EXPECT_FALSE(harness::parse_sweep_hello(
      "hello dtnsim-serve/999\nfingerprint 10 00000000\n", &len, &crc, &error));
  EXPECT_FALSE(harness::parse_sweep_hello(
      std::string("hello ") + harness::kServeProtocolVersion +
          "\nfingerprint ten 00000000\n",
      &len, &crc, &error));
}

TEST(RemoteAssignment, RoundTripsEveryShippedField) {
  harness::SpecSweepOptions options = fixture_options();
  options.shard_index = 3;
  options.shard_count = 5;
  options.resume = true;
  options.retries = 2;
  options.sync_every = 4;
  options.point_timeout_s = 1.5;
  options.seed_base = 12345;

  const std::string payload = harness::serialize_sweep_assignment(options);
  harness::SpecSweepOptions parsed;
  std::string error;
  ASSERT_TRUE(harness::parse_sweep_assignment(payload, &parsed, &error)) << error;

  EXPECT_EQ(parsed.seeds, options.seeds);
  EXPECT_EQ(parsed.seed_base, options.seed_base);
  EXPECT_EQ(parsed.shard_index, options.shard_index);
  EXPECT_EQ(parsed.shard_count, options.shard_count);
  EXPECT_EQ(parsed.resume, options.resume);
  EXPECT_EQ(parsed.isolate_failures, options.isolate_failures);
  EXPECT_EQ(parsed.retries, options.retries);
  EXPECT_EQ(parsed.sync_every, options.sync_every);
  EXPECT_EQ(parsed.point_timeout_s, options.point_timeout_s);
  ASSERT_EQ(parsed.axes.size(), options.axes.size());
  EXPECT_EQ(parsed.axes[0].key, options.axes[0].key);
  EXPECT_EQ(parsed.axes[0].values, options.axes[0].values);
  // The determinism anchor: what the daemon parsed must fingerprint
  // identically to what the driver shipped — spec, axes, seeds and all.
  EXPECT_EQ(harness::sweep_campaign_fingerprint(parsed),
            harness::sweep_campaign_fingerprint(options));
}

TEST(RemoteAssignment, AxisValuesSurviveSpacesAndCommas) {
  harness::SpecSweepOptions options = fixture_options();
  harness::SweepAxis tricky;
  tricky.key = "scenario.name";
  tricky.values = {"a value with spaces", "comma,inside", "="};
  options.axes.push_back(tricky);
  const std::string payload = harness::serialize_sweep_assignment(options);
  harness::SpecSweepOptions parsed;
  std::string error;
  ASSERT_TRUE(harness::parse_sweep_assignment(payload, &parsed, &error)) << error;
  ASSERT_EQ(parsed.axes.size(), 2u);
  EXPECT_EQ(parsed.axes[1].values, tricky.values);
}

TEST(RemoteAssignment, RejectsUnknownFieldsAndBadSpecs) {
  const std::string good =
      harness::serialize_sweep_assignment(fixture_options());
  harness::SpecSweepOptions parsed;
  std::string error;

  // Unknown campaign parameter: strict for /1, foreign fields refuse.
  std::string unknown = good;
  const std::size_t param_line_end = unknown.find('\n', unknown.find('\n') + 1);
  unknown.insert(param_line_end, " surprise=1");
  EXPECT_FALSE(harness::parse_sweep_assignment(unknown, &parsed, &error));
  EXPECT_NE(error.find("surprise"), std::string::npos) << error;

  // Version skew.
  std::string skewed = good;
  skewed.replace(0, skewed.find('\n'), "assign dtnsim-serve/999");
  EXPECT_FALSE(harness::parse_sweep_assignment(skewed, &parsed, &error));

  // A spec body that does not parse must be refused, not half-applied.
  std::string bad_spec = good.substr(0, good.find("spec\n") + 5);
  bad_spec += "scenario.nodes = not_a_number\n";
  EXPECT_FALSE(harness::parse_sweep_assignment(bad_spec, &parsed, &error));
}

TEST(RemoteProgress, RoundTrips) {
  const std::string payload = harness::serialize_sweep_progress(17, 40960);
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  ASSERT_TRUE(harness::parse_sweep_progress(payload, &records, &bytes));
  EXPECT_EQ(records, 17u);
  EXPECT_EQ(bytes, 40960u);
  EXPECT_FALSE(harness::parse_sweep_progress("progress 17", &records, &bytes));
  EXPECT_FALSE(harness::parse_sweep_progress("progres 1 2", &records, &bytes));
}

TEST(RemoteFingerprint, ExcludesShardSelectorAndThreads) {
  harness::SpecSweepOptions a = fixture_options();
  harness::SpecSweepOptions b = fixture_options();
  b.shard_index = 1;
  b.shard_count = 4;
  b.threads = 8;
  // The selector says WHO computes which points, never WHAT a point is:
  // every shard of one campaign shares one fingerprint.
  EXPECT_EQ(harness::sweep_campaign_fingerprint(a),
            harness::sweep_campaign_fingerprint(b));
  b.seed_base = 999;
  EXPECT_NE(harness::sweep_campaign_fingerprint(a),
            harness::sweep_campaign_fingerprint(b));
}

class ShardAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_ = fixture_options();
    path_ = ::testing::TempDir() + "remote_audit_shard.journal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  harness::SpecSweepOptions options_;
  std::string path_;
};

TEST_F(ShardAuditTest, MissingJournalIsPartial) {
  EXPECT_EQ(harness::audit_shard_journal(options_, 0, 2, path_),
            harness::ShardJournalState::kPartial);
}

TEST_F(ShardAuditTest, CompleteShardIsComplete) {
  harness::SpecSweepOptions shard = options_;
  shard.shard_index = 0;
  shard.shard_count = 2;
  shard.journal_path = path_;
  harness::run_spec_sweep(shard);
  EXPECT_EQ(harness::audit_shard_journal(options_, 0, 2, path_),
            harness::ShardJournalState::kComplete);
  // The same journal audited as the OTHER shard has recorded nothing of
  // that shard's points.
  EXPECT_EQ(harness::audit_shard_journal(options_, 1, 2, path_),
            harness::ShardJournalState::kPartial);
}

TEST_F(ShardAuditTest, ForeignCampaignIsForeign) {
  harness::SpecSweepOptions other = options_;
  other.seed_base = 4242;  // a different campaign entirely
  other.shard_index = 0;
  other.shard_count = 2;
  other.journal_path = path_;
  harness::run_spec_sweep(other);
  EXPECT_EQ(harness::audit_shard_journal(options_, 0, 2, path_),
            harness::ShardJournalState::kForeign);
}

}  // namespace
