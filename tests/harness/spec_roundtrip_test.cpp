// Spec serialization: property test that ANY spec survives the
// to_config -> parse_spec round trip bit for bit, plus targeted checks of
// the grammar (comments, whitespace, group ordering, adapters).
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/spec_io.hpp"
#include "util/rng.hpp"

namespace dtn::harness {
namespace {

/// A randomized spec touching every serializable field. Values come from
/// continuous draws (full-mantissa doubles), so the round trip only holds
/// if formatting is exact (shortest-round-trip to_chars).
ScenarioSpec random_spec(util::Pcg32& rng) {
  ScenarioSpec spec;
  spec.name = "rand" + std::to_string(rng.uniform_int(0, 999999));
  spec.duration_s = rng.uniform(100.0, 20000.0);
  spec.seed = rng.next_u64();
  spec.full_ttl_window = rng.bernoulli(0.5);

  const int map_pick = static_cast<int>(rng.uniform_int(0, 2));
  if (map_pick == 0) {
    spec.map.kind = "downtown";
    spec.map.params.downtown.rows = static_cast<int>(rng.uniform_int(4, 20));
    spec.map.params.downtown.cols = static_cast<int>(rng.uniform_int(4, 20));
    spec.map.params.downtown.block_m = rng.uniform(80.0, 400.0);
    spec.map.params.downtown.jitter_frac = rng.uniform(0.0, 0.4);
    spec.map.params.downtown.districts = static_cast<int>(rng.uniform_int(2, 6));
    spec.map.params.downtown.routes_per_district = static_cast<int>(rng.uniform_int(1, 4));
    spec.map.params.downtown.anchors_per_route = static_cast<int>(rng.uniform_int(2, 5));
    spec.map.params.downtown.hub_visit_prob = rng.uniform(0.0, 1.0);
  } else if (map_pick == 1) {
    spec.map.kind = "open_field";
    spec.map.params.width = rng.uniform(200.0, 5000.0);
    spec.map.params.height = rng.uniform(200.0, 5000.0);
  } else {
    spec.map.kind = "trace";
    spec.map.params.trace_file = "some/trace_" + std::to_string(rng.uniform_int(0, 99)) +
                                 ".trace";
  }

  spec.world.step_dt = rng.uniform(0.05, 1.0);
  spec.world.radio_range = rng.uniform(5.0, 50.0);
  spec.world.bitrate_bps = rng.uniform(1e5, 1e7);
  spec.world.buffer_bytes = rng.uniform_int(1 << 16, 1 << 24);
  spec.world.ttl_sweep_interval = rng.uniform(1.0, 60.0);
  spec.world.legacy_contact_path = rng.bernoulli(0.25);
  spec.world.legacy_buffer_path = rng.bernoulli(0.25);
  spec.world.legacy_movement_path = rng.bernoulli(0.25);
  spec.world.legacy_pair_sweep = rng.bernoulli(0.25);

  spec.traffic.interval_min = rng.uniform(5.0, 30.0);
  spec.traffic.interval_max = spec.traffic.interval_min + rng.uniform(0.0, 30.0);
  spec.traffic.start = rng.uniform(0.0, 100.0);
  spec.traffic.stop = rng.bernoulli(0.5) ? 1e18 : rng.uniform(1000.0, 10000.0);
  spec.traffic.size_bytes = rng.uniform_int(1 << 10, 1 << 20);
  spec.traffic.ttl = rng.uniform(300.0, 3000.0);
  const std::vector<sim::TrafficProfile> profiles{
      sim::TrafficProfile::kUniform, sim::TrafficProfile::kOnOff,
      sim::TrafficProfile::kDiurnal, sim::TrafficProfile::kTrace};
  spec.traffic.profile = profiles[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  spec.traffic.on_s = rng.uniform(10.0, 1000.0);
  spec.traffic.off_s = rng.uniform(0.0, 1000.0);
  spec.traffic.period_s = rng.uniform(100.0, 100000.0);
  spec.traffic.phase_s = rng.uniform(0.0, 1000.0);
  if (rng.bernoulli(0.3)) {
    spec.traffic_file =
        "some/traffic_" + std::to_string(rng.uniform_int(0, 99)) + ".trace";
  }

  const std::vector<std::string> protocols = routing::known_protocols();
  spec.protocol.name =
      protocols[static_cast<std::size_t>(rng.uniform_int(0, 11)) % protocols.size()];
  spec.protocol.copies = static_cast<int>(rng.uniform_int(1, 20));
  spec.protocol.alpha = rng.uniform(0.05, 1.0);
  spec.protocol.window = static_cast<std::size_t>(rng.uniform_int(8, 64));

  spec.communities.source = rng.bernoulli(0.5) ? "auto" : "round_robin";
  spec.communities.count = static_cast<int>(rng.uniform_int(1, 8));

  const int group_count = static_cast<int>(rng.uniform_int(1, 3));
  const std::vector<std::string> models{"bus", "random_waypoint", "community", "trace"};
  for (int g = 0; g < group_count; ++g) {
    GroupSpec group;
    group.name = "g" + std::to_string(g);
    group.model = models[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    group.count = static_cast<int>(rng.uniform_int(1, 200));
    group.params.bus.speed_min = rng.uniform(1.0, 5.0);
    group.params.bus.speed_max = rng.uniform(5.0, 20.0);
    group.params.bus.stop_spacing = rng.uniform(100.0, 1000.0);
    group.params.bus.pause_min = rng.uniform(0.0, 10.0);
    group.params.bus.pause_max = rng.uniform(10.0, 40.0);
    group.params.waypoint.speed_min = rng.uniform(0.1, 1.0);
    group.params.waypoint.speed_max = rng.uniform(1.0, 3.0);
    group.params.waypoint.pause_min = rng.uniform(0.0, 5.0);
    group.params.waypoint.pause_max = rng.uniform(5.0, 60.0);
    group.params.community.home_prob = rng.uniform(0.0, 1.0);
    group.params.community.speed_min = rng.uniform(0.1, 1.0);
    group.params.community.speed_max = rng.uniform(1.0, 3.0);
    group.params.community.pause_min = rng.uniform(0.0, 5.0);
    group.params.community.pause_max = rng.uniform(5.0, 60.0);
    spec.groups.push_back(std::move(group));
  }

  // Matrix entries over the groups just drawn (distinct (src, dst) pairs;
  // serialization keeps declaration order).
  int entries = static_cast<int>(rng.uniform_int(0, 2));
  if (entries > group_count) entries = group_count;
  for (int e = 0; e < entries; ++e) {
    TrafficEntrySpec entry;
    entry.src = spec.groups[static_cast<std::size_t>(
                                rng.uniform_int(0, group_count - 1))]
                    .name;
    entry.dst = "g" + std::to_string(e);  // e < group_count, so a real group
    entry.interval_min = rng.uniform(1.0, 20.0);
    entry.interval_max = entry.interval_min + rng.uniform(0.0, 20.0);
    entry.size_bytes = rng.uniform_int(1 << 8, 1 << 16);
    entry.weight = rng.uniform(0.1, 5.0);
    bool duplicate = false;
    for (const auto& prior : spec.traffic_matrix) {
      duplicate = duplicate || (prior.src == entry.src && prior.dst == entry.dst);
    }
    if (!duplicate) spec.traffic_matrix.push_back(std::move(entry));
  }
  return spec;
}

TEST(SpecRoundtrip, RandomSpecsSurviveSerializeParseSerialize) {
  util::Pcg32 rng(2024, 7);
  for (int trial = 0; trial < 200; ++trial) {
    const ScenarioSpec original = random_spec(rng);
    const std::string config = to_config(original);
    ScenarioSpec parsed;
    std::vector<SpecDiagnostic> diagnostics;
    ASSERT_TRUE(try_parse_spec(config, parsed, diagnostics))
        << "trial " << trial << ": "
        << (diagnostics.empty() ? "?" : diagnostics.front().message) << "\n"
        << config;
    EXPECT_EQ(to_config(parsed), config) << "trial " << trial;
  }
}

TEST(SpecRoundtrip, ParsedFieldsMatchOriginal) {
  util::Pcg32 rng(11, 3);
  const ScenarioSpec original = random_spec(rng);
  const ScenarioSpec parsed = parse_spec(to_config(original));
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.duration_s, original.duration_s);
  EXPECT_EQ(parsed.seed, original.seed);
  EXPECT_EQ(parsed.full_ttl_window, original.full_ttl_window);
  EXPECT_EQ(parsed.map.kind, original.map.kind);
  EXPECT_EQ(parsed.world.buffer_bytes, original.world.buffer_bytes);
  EXPECT_EQ(parsed.world.step_dt, original.world.step_dt);
  EXPECT_EQ(parsed.traffic.ttl, original.traffic.ttl);
  EXPECT_EQ(parsed.traffic.profile, original.traffic.profile);
  EXPECT_EQ(parsed.traffic.on_s, original.traffic.on_s);
  EXPECT_EQ(parsed.traffic.off_s, original.traffic.off_s);
  EXPECT_EQ(parsed.traffic.period_s, original.traffic.period_s);
  EXPECT_EQ(parsed.traffic.phase_s, original.traffic.phase_s);
  EXPECT_EQ(parsed.traffic_file, original.traffic_file);
  ASSERT_EQ(parsed.traffic_matrix.size(), original.traffic_matrix.size());
  for (std::size_t e = 0; e < parsed.traffic_matrix.size(); ++e) {
    EXPECT_EQ(parsed.traffic_matrix[e].src, original.traffic_matrix[e].src);
    EXPECT_EQ(parsed.traffic_matrix[e].dst, original.traffic_matrix[e].dst);
    EXPECT_EQ(parsed.traffic_matrix[e].interval_min,
              original.traffic_matrix[e].interval_min);
    EXPECT_EQ(parsed.traffic_matrix[e].weight, original.traffic_matrix[e].weight);
  }
  EXPECT_EQ(parsed.protocol.name, original.protocol.name);
  EXPECT_EQ(parsed.protocol.alpha, original.protocol.alpha);
  EXPECT_EQ(parsed.communities.source, original.communities.source);
  ASSERT_EQ(parsed.groups.size(), original.groups.size());
  for (std::size_t g = 0; g < parsed.groups.size(); ++g) {
    EXPECT_EQ(parsed.groups[g].name, original.groups[g].name);
    EXPECT_EQ(parsed.groups[g].model, original.groups[g].model);
    EXPECT_EQ(parsed.groups[g].count, original.groups[g].count);
  }
  EXPECT_EQ(parsed.node_count(), original.node_count());
}

TEST(SpecRoundtrip, AdapterSpecsRoundTrip) {
  BusScenarioParams bus;
  bus.node_count = 77;
  bus.duration_s = 1234.5;
  bus.protocol.name = "CR";
  const std::string bus_config = to_config(to_spec(bus));
  EXPECT_EQ(to_config(parse_spec(bus_config)), bus_config);

  CommunityScenarioParams community;
  community.node_count = 36;
  community.communities = 6;
  community.home_prob = 0.91;
  const std::string community_config = to_config(to_spec(community));
  EXPECT_EQ(to_config(parse_spec(community_config)), community_config);
}

TEST(SpecRoundtrip, CommentsAndWhitespaceAreIgnored) {
  const ScenarioSpec spec = parse_spec(
      "# full-line comment\n"
      "\n"
      "  scenario.duration   =  4000   # trailing comment\n"
      "\tscenario.seed=9\n"
      "group.walkers.model = random_waypoint\n"
      "group.walkers.count = 12   \n");
  EXPECT_EQ(spec.duration_s, 4000.0);
  EXPECT_EQ(spec.seed, 9u);
  ASSERT_EQ(spec.groups.size(), 1u);
  EXPECT_EQ(spec.groups[0].count, 12);
}

TEST(SpecRoundtrip, GroupsKeepDeclarationOrder) {
  const ScenarioSpec spec = parse_spec(
      "map.kind = downtown\n"
      "group.buses.model = bus\n"
      "group.buses.count = 10\n"
      "group.walkers.model = random_waypoint\n"
      "group.walkers.count = 20\n"
      "group.buses.speed_max = 15\n");  // later keys address earlier groups
  ASSERT_EQ(spec.groups.size(), 2u);
  EXPECT_EQ(spec.groups[0].name, "buses");
  EXPECT_EQ(spec.groups[1].name, "walkers");
  EXPECT_EQ(spec.groups[0].params.bus.speed_max, 15.0);
  EXPECT_EQ(spec.node_count(), 30);
}

TEST(SpecRoundtrip, ApplyOverrideMatchesParserVocabulary) {
  ScenarioSpec spec = to_spec(BusScenarioParams{});
  apply_override(spec, "protocol.name", "Epidemic");
  apply_override(spec, "scenario.nodes", "55");
  apply_override(spec, "group.buses.speed_max", "10.5");
  EXPECT_EQ(spec.protocol.name, "Epidemic");
  EXPECT_EQ(spec.groups[0].count, 55);
  EXPECT_EQ(spec.groups[0].params.bus.speed_max, 10.5);
}

TEST(SpecRoundtrip, SaveAndLoadSpecFile) {
  util::Pcg32 rng(5, 5);
  const ScenarioSpec original = random_spec(rng);
  const std::string path = ::testing::TempDir() + "/roundtrip.cfg";
  ASSERT_TRUE(save_spec(path, original));
  const ScenarioSpec loaded = load_spec(path);
  EXPECT_EQ(to_config(loaded), to_config(original));
}

}  // namespace
}  // namespace dtn::harness
