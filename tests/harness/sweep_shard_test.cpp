// Shard-merge equivalence properties for the multi-process campaign
// fabric: for ANY shard count in {1, 2, 3, 5} — and for arbitrary
// (non-modulo) point partitions — running the shards separately and
// folding their journals through merge_sweep_journals yields aggregates
// BIT-IDENTICAL to a single-process campaign, at thread counts 1 and 3.
// Overlapping shards, foreign journals, and invalid shard selectors are
// refused loudly. This is the in-process half of the fabric's acceptance
// gate; the real fork/exec + SIGKILL half is the dtnsim_worker_crash
// ctest (cmake/dtnsim_worker_crash.cmake).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/journal.hpp"
#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"

namespace dtn::harness {
namespace {

/// Smallest sweepable world that still produces nonzero, copies-dependent
/// metrics (mirrors tests/cli/resume.cfg).
ScenarioSpec tiny_spec() {
  return parse_spec(
      "scenario.name = shard_prop\n"
      "scenario.duration = 1500\n"
      "scenario.seed = 7\n"
      "map.kind = open_field\n"
      "map.width = 120\n"
      "map.height = 120\n"
      "group.walkers.model = random_waypoint\n"
      "group.walkers.count = 8\n"
      "group.walkers.speed_min = 1\n"
      "group.walkers.speed_max = 3\n"
      "world.radio_range = 40\n"
      "protocol.name = EER\n"
      "protocol.copies = 4\n"
      "communities.count = 2\n"
      "traffic.interval_min = 20\n"
      "traffic.interval_max = 30\n");
}

SpecSweepOptions base_options(std::size_t threads) {
  SpecSweepOptions opt;
  opt.base = tiny_spec();
  opt.axes = {{"protocol.copies", {"2", "4", "8"}}};
  opt.seeds = 2;
  opt.threads = threads;
  return opt;
}

/// Bitwise equality of every aggregate — the acceptance bar is
/// bit-identical, not approximately-equal, so EXPECT_EQ on doubles is the
/// point, not an oversight.
void expect_bitwise_equal(const std::vector<SpecPointResult>& got,
                          const std::vector<SpecPointResult>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const PointResult& g = got[i].result;
    const PointResult& w = want[i].result;
    const std::string where = context + " point " + std::to_string(i);
    EXPECT_EQ(g.delivery_ratio.mean(), w.delivery_ratio.mean()) << where;
    EXPECT_EQ(g.delivery_ratio.stddev(), w.delivery_ratio.stddev()) << where;
    EXPECT_EQ(g.delivery_ratio.count(), w.delivery_ratio.count()) << where;
    EXPECT_EQ(g.latency.mean(), w.latency.mean()) << where;
    EXPECT_EQ(g.latency.stddev(), w.latency.stddev()) << where;
    EXPECT_EQ(g.goodput.mean(), w.goodput.mean()) << where;
    EXPECT_EQ(g.control_mb.mean(), w.control_mb.mean()) << where;
    EXPECT_EQ(g.relayed.mean(), w.relayed.mean()) << where;
    EXPECT_EQ(g.contacts.mean(), w.contacts.mean()) << where;
    EXPECT_EQ(g.contacts.stddev(), w.contacts.stddev()) << where;
  }
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

class SweepShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stem_ = std::string("shard_prop_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    cleanup();
  }
  void TearDown() override { cleanup(); }
  void cleanup() {
    for (const auto& path : made_) std::remove(path.c_str());
    made_.clear();
  }
  std::string journal_path(std::size_t shard) {
    const std::string path = stem_ + "_" + std::to_string(shard) + ".dtnj";
    made_.push_back(path);
    return path;
  }
  std::string stem_;
  std::vector<std::string> made_;
};

TEST_F(SweepShardTest, InvalidShardSelectorThrows) {
  SpecSweepOptions opt = base_options(1);
  opt.shard_count = 0;
  EXPECT_THROW(run_spec_sweep(opt), std::invalid_argument);
  opt.shard_count = 2;
  opt.shard_index = 2;
  EXPECT_THROW(run_spec_sweep(opt), std::invalid_argument);
  opt.shard_index = 5;
  EXPECT_THROW(run_spec_sweep(opt), std::invalid_argument);
}

TEST_F(SweepShardTest, OutOfShardPointsAreSkippedNotRun) {
  SpecSweepOptions opt = base_options(1);
  opt.shard_index = 0;
  opt.shard_count = 2;  // of 3 points, indices 0 and 2 are in-shard
  const auto got = run_spec_sweep(opt);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(got[0].exec.ok());
  EXPECT_TRUE(got[1].exec.skipped());
  EXPECT_TRUE(got[2].exec.ok());
  // A skipped point was never executed: no samples, no attempts.
  EXPECT_EQ(got[1].result.delivery_ratio.count(), 0u);
  EXPECT_EQ(got[1].exec.tries, 0);
  // The JSON carries the skipped status and counts it as skipped, not
  // failed.
  const std::string json = sweep_results_json(opt, got);
  EXPECT_NE(json.find("\"skipped_points\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"status\": \"skipped\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"status\": \"failed\""), std::string::npos) << json;
}

TEST_F(SweepShardTest, ModuloShardsMergeBitIdentical) {
  // The fabric's core property: for every shard count (including counts
  // larger than the grid, which leave header-only journals) and at both
  // execution paths, per-shard journaled runs merge into aggregates
  // bit-identical to one single-process campaign.
  const auto want = run_spec_sweep(base_options(1));
  for (const std::size_t shards : {1u, 2u, 3u, 5u}) {
    for (const std::size_t threads : {1u, 3u}) {
      const std::string context =
          "shards=" + std::to_string(shards) + " threads=" + std::to_string(threads);
      std::vector<std::string> paths;
      for (std::size_t s = 0; s < shards; ++s) {
        SpecSweepOptions opt = base_options(threads);
        opt.shard_index = s;
        opt.shard_count = shards;
        opt.journal_path = journal_path(s);
        paths.push_back(opt.journal_path);
        run_spec_sweep(opt);
      }
      SweepMergeStats stats;
      const auto got = merge_sweep_journals(base_options(threads), paths, &stats);
      expect_bitwise_equal(got, want, context);
      EXPECT_EQ(stats.journals_read, shards) << context;
      EXPECT_EQ(stats.points_ok, want.size()) << context;
      EXPECT_EQ(stats.points_failed, 0u) << context;
      EXPECT_EQ(stats.points_missing, 0u) << context;
      for (const auto& point : got) EXPECT_TRUE(point.exec.ok()) << context;
      cleanup();
    }
  }
}

TEST_F(SweepShardTest, ArbitraryPartitionsMergeBitIdentical) {
  // merge_sweep_journals does not require the modulo assignment: ANY
  // disjoint partition of the recorded points merges. Sample partitions by
  // splitting a complete single-process journal's records across K files
  // with a deterministic LCG.
  const auto want = run_spec_sweep(base_options(1));

  SpecSweepOptions full = base_options(1);
  full.journal_path = journal_path(99);
  run_spec_sweep(full);
  const JournalReadResult replay = read_journal(full.journal_path);
  ASSERT_FALSE(replay.tail_dropped());
  ASSERT_EQ(replay.records.size(), 4u);  // header + 3 points
  const std::string header_frame = frame_record(replay.records.front());

  std::uint64_t lcg = 42;
  const auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::size_t>(lcg >> 33);
  };
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t buckets = 2 + static_cast<std::size_t>(trial % 2);  // 2 or 3
    std::vector<std::string> bytes(buckets, header_frame);
    for (std::size_t r = 1; r < replay.records.size(); ++r) {
      bytes[next() % buckets] += frame_record(replay.records[r]);
    }
    std::vector<std::string> paths;
    for (std::size_t b = 0; b < buckets; ++b) {
      paths.push_back(journal_path(b));
      write_file(paths.back(), bytes[b]);
    }
    SweepMergeStats stats;
    const auto got = merge_sweep_journals(base_options(1), paths, &stats);
    expect_bitwise_equal(got, want, "trial " + std::to_string(trial));
    EXPECT_EQ(stats.points_ok, want.size());
    EXPECT_EQ(stats.points_missing, 0u);
    cleanup();
  }
}

TEST_F(SweepShardTest, OverlappingShardsAreRefused) {
  // Two journals recording the same point would silently double-count its
  // samples — the merge must throw, never publish.
  SpecSweepOptions a = base_options(1);
  a.shard_index = 0;
  a.shard_count = 2;
  a.journal_path = journal_path(0);
  run_spec_sweep(a);
  SpecSweepOptions b = base_options(1);
  b.shard_index = 0;  // same shard again: overlaps on points 0 and 2
  b.shard_count = 2;
  b.journal_path = journal_path(1);
  run_spec_sweep(b);
  EXPECT_THROW(
      merge_sweep_journals(base_options(1), {a.journal_path, b.journal_path}),
      SweepJournalError);
}

TEST_F(SweepShardTest, ForeignJournalIsRefused) {
  // A journal from a DIFFERENT campaign (axis values changed) among the
  // shard set must abort the merge loudly.
  SpecSweepOptions mine = base_options(1);
  mine.shard_index = 0;
  mine.shard_count = 2;
  mine.journal_path = journal_path(0);
  run_spec_sweep(mine);
  SpecSweepOptions foreign = base_options(1);
  foreign.axes = {{"protocol.copies", {"2", "16"}}};
  foreign.journal_path = journal_path(1);
  run_spec_sweep(foreign);
  EXPECT_THROW(
      merge_sweep_journals(base_options(1), {mine.journal_path, foreign.journal_path}),
      SweepJournalError);
}

TEST_F(SweepShardTest, MissingJournalsDegradeToFailedPoints) {
  // A shard that died before writing anything contributes nothing; its
  // points come back failed-with-reason so the campaign can publish the
  // survivors with exit-1 semantics instead of refusing.
  SpecSweepOptions opt = base_options(1);
  opt.shard_index = 0;
  opt.shard_count = 2;
  opt.journal_path = journal_path(0);
  run_spec_sweep(opt);
  SweepMergeStats stats;
  const auto got = merge_sweep_journals(
      base_options(1), {opt.journal_path, stem_ + "_nonexistent.dtnj"}, &stats);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(got[0].exec.ok());
  EXPECT_TRUE(got[1].exec.failed());
  EXPECT_NE(got[1].exec.error.find("no shard journal"), std::string::npos);
  EXPECT_TRUE(got[2].exec.ok());
  EXPECT_EQ(stats.journals_read, 1u);
  EXPECT_EQ(stats.points_ok, 2u);
  EXPECT_EQ(stats.points_missing, 1u);
}

TEST_F(SweepShardTest, ShardedResumeReplaysOnlyItsOwnSlice) {
  // Resuming WITH a shard selector ignores journal records for
  // out-of-shard points: a shard restarted from a journal written by a
  // wider run must not adopt points that now belong to someone else.
  SpecSweepOptions full = base_options(1);
  full.journal_path = journal_path(0);
  run_spec_sweep(full);  // journal now records all 3 points

  SpecSweepOptions resume = base_options(1);
  resume.shard_index = 1;
  resume.shard_count = 2;  // owns only point 1
  resume.journal_path = full.journal_path;
  resume.resume = true;
  const auto got = run_spec_sweep(resume);
  EXPECT_TRUE(got[0].exec.skipped());
  EXPECT_TRUE(got[1].exec.resumed);
  EXPECT_TRUE(got[1].exec.ok());
  EXPECT_TRUE(got[2].exec.skipped());
  EXPECT_EQ(got[0].result.delivery_ratio.count(), 0u);
}

TEST_F(SweepShardTest, InspectJournalReportsCampaignAndDamage) {
  SpecSweepOptions full = base_options(1);
  full.journal_path = journal_path(0);
  run_spec_sweep(full);

  JournalInspection info = inspect_sweep_journal(full.journal_path);
  EXPECT_TRUE(info.intact());
  EXPECT_TRUE(info.campaign);
  EXPECT_EQ(info.records, 4u);
  EXPECT_EQ(info.seeds, 2);
  EXPECT_EQ(info.grid_points, 3u);
  EXPECT_EQ(info.axes, 1u);
  EXPECT_EQ(info.points_recorded, 3u);
  EXPECT_EQ(info.points_ok, 3u);
  EXPECT_EQ(info.points_failed, 0u);
  EXPECT_EQ(info.dropped_bytes, 0u);

  // A torn tail is diagnosed, not fatal — and never counted as a record.
  std::FILE* f = std::fopen(full.journal_path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("%DTNJ1 99 deadbeef\ngarbage", f);
  std::fclose(f);
  info = inspect_sweep_journal(full.journal_path);
  EXPECT_FALSE(info.intact());
  EXPECT_EQ(info.records, 4u);
  EXPECT_GT(info.dropped_bytes, 0u);
  EXPECT_TRUE(info.campaign);

  const JournalInspection gone = inspect_sweep_journal(stem_ + "_missing.dtnj");
  EXPECT_TRUE(gone.missing);
  EXPECT_FALSE(gone.intact());
}

TEST_F(SweepShardTest, InspectJournalInfersTheShardSelector) {
  // Use more seeds so the 3-point grid becomes a 3-point grid regardless;
  // widen the axis to 6 points so strides are visible.
  SpecSweepOptions opt = base_options(1);
  opt.axes = {{"protocol.copies", {"1", "2", "3", "4", "6", "8"}}};

  // A whole-grid journal: consecutive indices share stride 1.
  SpecSweepOptions whole = opt;
  whole.journal_path = journal_path(0);
  run_spec_sweep(whole);
  JournalInspection info = inspect_sweep_journal(whole.journal_path);
  EXPECT_EQ(info.shard_modulus, 1u);
  EXPECT_EQ(info.shard_residue, 0u);

  // Shard 1/3 records indices 1 and 4: gcd of gaps is 3, residue 1.
  SpecSweepOptions shard = opt;
  shard.shard_index = 1;
  shard.shard_count = 3;
  shard.journal_path = journal_path(1);
  run_spec_sweep(shard);
  info = inspect_sweep_journal(shard.journal_path);
  EXPECT_EQ(info.shard_modulus, 3u);
  EXPECT_EQ(info.shard_residue, 1u);

  // A shard with fewer than two recorded points implies no stride at all.
  SpecSweepOptions lone = opt;
  lone.shard_index = 5;
  lone.shard_count = 6;
  lone.journal_path = journal_path(2);
  run_spec_sweep(lone);
  info = inspect_sweep_journal(lone.journal_path);
  EXPECT_EQ(info.points_recorded, 1u);
  EXPECT_EQ(info.shard_modulus, 0u);
}

TEST_F(SweepShardTest, MergeRecordsPerShardOrigins) {
  // The merge annotates each recorded point with the origin of the
  // journal that carried it — "host:port" for a shard a remote daemon
  // shipped back, "" (rendered "local" in the JSON) otherwise. Origins
  // are volatile metadata: they ride the filterable `"exec` lines only.
  SpecSweepOptions opt = base_options(1);
  std::vector<std::string> journals;
  for (std::size_t s = 0; s < 2; ++s) {
    SpecSweepOptions shard = opt;
    shard.shard_index = s;
    shard.shard_count = 2;
    shard.journal_path = journal_path(s);
    run_spec_sweep(shard);
    journals.push_back(shard.journal_path);
  }
  SweepMergeStats stats;
  const std::vector<std::string> origins = {"", "10.0.0.2:7700"};
  const auto merged = merge_sweep_journals(opt, journals, &stats, origins);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].exec.origin, "");            // shard 0: local
  EXPECT_EQ(merged[1].exec.origin, "10.0.0.2:7700");  // shard 1: remote
  EXPECT_EQ(merged[2].exec.origin, "");
  const std::string json = sweep_results_json(opt, merged);
  EXPECT_NE(json.find("\"origin\": \"local\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"origin\": \"10.0.0.2:7700\""), std::string::npos)
      << json;
  // Omitting origins (every in-process caller) leaves every point local.
  const auto plain = merge_sweep_journals(opt, journals, &stats);
  for (const auto& point : plain) EXPECT_EQ(point.exec.origin, "");
}

}  // namespace
}  // namespace dtn::harness
