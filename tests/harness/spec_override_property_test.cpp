// apply_override property tests over the ENTIRE key vocabulary: for every
// key spec_key_names() reports (walking the map-kind and mobility-model
// registries, so new keys are covered the moment they register),
// override -> serialize -> parse must round-trip. Also pins the loud
// rejection of scenario.seed / duplicate sweep axes.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"
#include "mobility/registry.hpp"
#include "util/value_parse.hpp"

namespace dtn::harness {
namespace {

/// Serialized key -> value map of a spec's canonical config.
std::map<std::string, std::string> config_map(const ScenarioSpec& spec) {
  std::map<std::string, std::string> kv;
  std::istringstream in(to_config(spec));
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t");
      const auto e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    kv[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
  }
  return kv;
}

/// Specs that together cover every registry entry's vocabulary: each map
/// kind, and one group per mobility model (grouped by a compatible map).
std::vector<ScenarioSpec> vocabulary_specs() {
  std::vector<ScenarioSpec> specs;
  {
    ScenarioSpec spec;  // downtown: bus + stationary + random_waypoint
    spec.map.kind = "downtown";
    for (const auto& [name, model] :
         std::vector<std::pair<std::string, std::string>>{
             {"buses", "bus"}, {"relays", "stationary"}, {"walkers", "random_waypoint"}}) {
      GroupSpec g;
      g.name = name;
      g.model = model;
      g.count = 4;
      spec.groups.push_back(std::move(g));
    }
    spec.groups[1].protocol = "Epidemic";  // exercise the override key
    // Traffic workload vocabulary: an on-off profile plus two matrix
    // entries, so every traffic.<src>.<dst>.<param> key is serialized.
    spec.traffic.profile = sim::TrafficProfile::kOnOff;
    spec.traffic.on_s = 600.0;
    spec.traffic.off_s = 300.0;
    spec.traffic_matrix = {TrafficEntrySpec{"buses", "relays", 20.0, 30.0, 4096, 2.0},
                           TrafficEntrySpec{"walkers", "walkers", 40.0, 60.0, 1024, 1.0}};
    specs.push_back(std::move(spec));
  }
  {
    ScenarioSpec spec;  // open_field: community (+ diurnal traffic)
    spec.map.kind = "open_field";
    GroupSpec g;
    g.name = "campus";
    g.model = "community";
    g.count = 4;
    spec.groups.push_back(std::move(g));
    spec.traffic.profile = sim::TrafficProfile::kDiurnal;
    spec.traffic.period_s = 3600.0;
    spec.traffic.phase_s = 900.0;
    specs.push_back(std::move(spec));
  }
  {
    ScenarioSpec spec;  // trace: trace playback
    spec.map.kind = "trace";
    spec.map.params.trace_file = "fixtures/example.trace";
    GroupSpec g;
    g.name = "replay";
    g.model = "trace";
    g.count = 2;
    spec.groups.push_back(std::move(g));
    spec.traffic_file = "fixtures/example_traffic.trace";  // engages traffic.file
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(SpecOverrideProperty, EveryVocabularyKeyRoundTripsThroughOverride) {
  for (const ScenarioSpec& base : vocabulary_specs()) {
    const std::map<std::string, std::string> serialized = config_map(base);
    for (const std::string& key : spec_key_names(base)) {
      const auto it = serialized.find(key);
      if (it == serialized.end()) {
        // Write-only aliases (scenario.nodes) and engaged-only keys
        // (group.<g>.protocol when empty, world.legacy_* when false) are
        // absent from the canonical form; overriding them must still work.
        ScenarioSpec spec = base;
        if (key == "scenario.nodes") {
          if (base.groups.size() == 1) {
            ASSERT_NO_THROW(apply_override(spec, key, "9")) << key;
            EXPECT_EQ(spec.groups[0].count, 9) << key;
          }
          continue;
        }
        std::string value = "true";  // world.legacy_* bench switches
        if (key.size() > 9 && key.substr(key.size() - 9) == ".protocol") {
          value = "DirectDelivery";
        }
        ASSERT_NO_THROW(apply_override(spec, key, value)) << key;
        // Engaging the key makes it serializable; the result must re-parse
        // to the identical spec.
        const std::string config = to_config(spec);
        EXPECT_EQ(to_config(parse_spec(config)), config) << key;
        continue;
      }
      // Identity property: overriding a key with its own serialized value
      // must not change the canonical form.
      ScenarioSpec spec = base;
      ASSERT_NO_THROW(apply_override(spec, key, it->second)) << key;
      EXPECT_EQ(to_config(spec), to_config(base)) << key;
    }
  }
}

TEST(SpecOverrideProperty, PerturbedNumericKeysSurviveSerializeParse) {
  // Overriding with a NEW value must land in the serialized form verbatim
  // and survive a parse round trip — for every numeric key in the table.
  for (const ScenarioSpec& base : vocabulary_specs()) {
    for (const auto& [key, value] : config_map(base)) {
      double numeric = 0.0;
      if (!util::parse_value(value, numeric)) continue;  // strings/bools
      const std::string perturbed = util::format_value(numeric + 1.0);
      ScenarioSpec spec = base;
      ASSERT_NO_THROW(apply_override(spec, key, perturbed)) << key;
      const std::map<std::string, std::string> after = config_map(spec);
      ASSERT_TRUE(after.count(key)) << key;
      EXPECT_EQ(after.at(key), perturbed) << key;
      const std::string config = to_config(spec);
      EXPECT_EQ(to_config(parse_spec(config)), config) << key;
    }
  }
}

TEST(SpecOverrideProperty, SuggestionVocabularyTracksTheRegistries) {
  // spec_key_names is the suggestion list; it must contain at least every
  // serialized key plus the new-feature keys this PR's docs promise.
  const std::vector<ScenarioSpec> specs = vocabulary_specs();
  for (const ScenarioSpec& base : specs) {
    const std::vector<std::string> keys = spec_key_names(base);
    auto has = [&keys](const std::string& k) {
      return std::find(keys.begin(), keys.end(), k) != keys.end();
    };
    for (const auto& [key, value] : config_map(base)) {
      EXPECT_TRUE(has(key)) << key << " serialized but not in spec_key_names";
    }
    EXPECT_TRUE(has("communities.warmup"));
    EXPECT_TRUE(has("traffic.profile"));
    EXPECT_TRUE(has("traffic.file"));
    for (const auto& e : base.traffic_matrix) {
      EXPECT_TRUE(has("traffic." + e.src + "." + e.dst + ".weight"));
    }
    for (const auto& g : base.groups) {
      EXPECT_TRUE(has("group." + g.name + ".protocol"));
    }
  }
}

TEST(SpecOverrideProperty, SeedAxisAndDuplicateAxesStayLoudlyRejected) {
  SpecSweepOptions options;
  options.base = to_spec(BusScenarioParams{});
  options.seeds = 1;

  options.axes = {SweepAxis{"scenario.seed", {"1", "2"}}};
  try {
    run_spec_sweep(options);
    FAIL() << "scenario.seed axis must be rejected";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("scenario.seed cannot be a sweep axis"),
              std::string::npos);
  }

  options.axes = {SweepAxis{"protocol.copies", {"2", "4"}},
                  SweepAxis{"protocol.copies", {"8"}}};
  try {
    run_spec_sweep(options);
    FAIL() << "duplicate axes must be rejected";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate sweep axis"), std::string::npos);
  }

  // The new vocabulary is sweepable like everything else.
  options.axes = {SweepAxis{"communities.warmup", {"100", "200"}}};
  options.base.duration_s = 20.0;
  options.base.traffic.ttl = 10.0;
  options.base.groups[0].count = 4;
  EXPECT_NO_THROW(run_spec_sweep(options));

  // Matrix-entry keys are sweepable axes (the bench's hub-load campaign).
  options.axes = {SweepAxis{"traffic.buses.buses.weight", {"1", "2"}}};
  EXPECT_NO_THROW(run_spec_sweep(options));
}

}  // namespace
}  // namespace dtn::harness
