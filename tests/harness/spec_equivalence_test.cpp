// Spec-vs-legacy-params equivalence: the ScenarioSpec execution path must
// reproduce the pre-spec hand-rolled scenario builders BIT FOR BIT. The
// legacy builders live in this test verbatim (fresh World, the exact
// construction order the params structs used before becoming adapters);
// every protocol × seed must match on every integer metric and the exact
// float aggregates.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/spec_io.hpp"
#include "mobility/bus_movement.hpp"
#include "mobility/community_movement.hpp"

namespace dtn::harness {
namespace {

BusScenarioParams small_bus(const std::string& protocol, std::uint64_t seed) {
  BusScenarioParams p;
  p.node_count = 24;
  p.duration_s = 1500.0;
  p.seed = seed;
  p.map.rows = 6;
  p.map.cols = 8;
  p.map.districts = 3;
  p.map.routes_per_district = 2;
  p.traffic.ttl = 600.0;
  p.protocol.name = protocol;
  p.protocol.copies = 6;
  return p;
}

/// The pre-spec run_bus_scenario body, verbatim.
ScenarioResult legacy_run_bus(const BusScenarioParams& params) {
  geo::DowntownParams map_params = params.map;
  map_params.seed = params.seed;
  const geo::BusNetwork net = geo::generate_downtown(map_params);
  std::vector<std::shared_ptr<const geo::Polyline>> routes;
  routes.reserve(net.routes.size());
  for (const auto& r : net.routes) {
    routes.push_back(std::make_shared<const geo::Polyline>(r.line));
  }
  std::shared_ptr<const core::CommunityTable> communities = params.communities_override;
  if (!communities) {
    communities = std::make_shared<const core::CommunityTable>(
        bus_scenario_communities(net, params.node_count));
  }
  sim::WorldConfig world_config = params.world;
  world_config.seed = params.seed;
  sim::World world(world_config);
  routing::ProtocolConfig protocol = params.protocol;
  protocol.communities = communities;
  for (int v = 0; v < params.node_count; ++v) {
    const std::size_t route_idx = static_cast<std::size_t>(v) % routes.size();
    world.add_node(routes[route_idx], params.bus, routing::create_router(protocol));
  }
  sim::TrafficParams traffic = params.traffic;
  if (params.full_ttl_window) traffic.stop = params.duration_s - traffic.ttl;
  world.set_traffic(traffic);
  world.run(params.duration_s);
  ScenarioResult result;
  result.metrics = world.metrics();
  result.contact_events = world.contact_events();
  result.protocol = params.protocol.name;
  result.node_count = params.node_count;
  result.seed = params.seed;
  return result;
}

/// The pre-spec run_community_scenario body, verbatim.
ScenarioResult legacy_run_community(const CommunityScenarioParams& params) {
  const int l = params.communities > 0 ? params.communities : 1;
  const double band = params.world_size_m / static_cast<double>(l);
  std::vector<int> cid(static_cast<std::size_t>(params.node_count));
  for (int v = 0; v < params.node_count; ++v) {
    cid[static_cast<std::size_t>(v)] = v % l;
  }
  auto communities = std::make_shared<const core::CommunityTable>(cid);
  sim::WorldConfig world_config = params.world;
  world_config.seed = params.seed;
  sim::World world(world_config);
  routing::ProtocolConfig protocol = params.protocol;
  protocol.communities = communities;
  for (int v = 0; v < params.node_count; ++v) {
    const int c = cid[static_cast<std::size_t>(v)];
    mobility::CommunityMovementParams mp;
    mp.world_min = {0.0, 0.0};
    mp.world_max = {params.world_size_m, params.world_size_m};
    mp.home_min = {band * c, 0.0};
    mp.home_max = {band * (c + 1), params.world_size_m};
    mp.home_prob = params.home_prob;
    world.add_node(mp, routing::create_router(protocol));
  }
  sim::TrafficParams traffic = params.traffic;
  if (params.full_ttl_window) traffic.stop = params.duration_s - traffic.ttl;
  world.set_traffic(traffic);
  world.run(params.duration_s);
  ScenarioResult result;
  result.metrics = world.metrics();
  result.contact_events = world.contact_events();
  result.protocol = params.protocol.name;
  result.node_count = params.node_count;
  result.seed = params.seed;
  return result;
}

void expect_identical(const ScenarioResult& legacy, const ScenarioResult& spec) {
  EXPECT_EQ(legacy.metrics.created(), spec.metrics.created());
  EXPECT_EQ(legacy.metrics.delivered(), spec.metrics.delivered());
  EXPECT_EQ(legacy.metrics.relayed(), spec.metrics.relayed());
  EXPECT_EQ(legacy.metrics.transfers_aborted(), spec.metrics.transfers_aborted());
  EXPECT_EQ(legacy.metrics.dropped(), spec.metrics.dropped());
  EXPECT_EQ(legacy.metrics.expired(), spec.metrics.expired());
  EXPECT_EQ(legacy.metrics.control_bytes(), spec.metrics.control_bytes());
  EXPECT_EQ(legacy.contact_events, spec.contact_events);
  EXPECT_EQ(legacy.metrics.latency_mean(), spec.metrics.latency_mean());
  EXPECT_EQ(legacy.metrics.delivery_ratio(), spec.metrics.delivery_ratio());
  EXPECT_EQ(legacy.metrics.goodput(), spec.metrics.goodput());
}

TEST(SpecEquivalence, BusSpecMatchesLegacyBuilderAllProtocolsTwoSeeds) {
  ScenarioRunner runner;  // one reused world across the whole grid
  for (const auto& protocol : routing::known_protocols()) {
    for (const std::uint64_t seed : {7u, 8u}) {
      const BusScenarioParams params = small_bus(protocol, seed);
      SCOPED_TRACE(protocol + "/seed=" + std::to_string(seed));
      const ScenarioResult legacy = legacy_run_bus(params);
      const ScenarioResult via_spec = runner.run(to_spec(params));
      expect_identical(legacy, via_spec);
    }
  }
}

TEST(SpecEquivalence, BusSpecSurvivesConfigFileRoundTripExecution) {
  // Not just the in-memory spec: the SERIALIZED form must run identically.
  const BusScenarioParams params = small_bus("EER", 9);
  const ScenarioResult direct = legacy_run_bus(params);
  const ScenarioSpec reparsed = parse_spec(to_config(to_spec(params)));
  const ScenarioResult via_file = run_scenario(reparsed);
  expect_identical(direct, via_file);
}

TEST(SpecEquivalence, CommunitySpecMatchesLegacyBuilder) {
  ScenarioRunner runner;
  for (const std::string protocol : {"CR", "EER", "SprayAndWait", "Epidemic"}) {
    for (const std::uint64_t seed : {3u, 4u}) {
      CommunityScenarioParams params;
      params.node_count = 20;
      params.communities = 4;
      params.duration_s = 1500.0;
      params.world_size_m = 600.0;
      params.world.radio_range = 30.0;
      params.protocol.name = protocol;
      params.protocol.copies = 4;
      params.seed = seed;
      SCOPED_TRACE(protocol + "/seed=" + std::to_string(seed));
      const ScenarioResult legacy = legacy_run_community(params);
      const ScenarioResult via_spec = runner.run(to_spec(params));
      expect_identical(legacy, via_spec);
    }
  }
}

TEST(SpecEquivalence, CommunitiesOverrideIsHonored) {
  BusScenarioParams params = small_bus("CR", 5);
  std::vector<int> cid(static_cast<std::size_t>(params.node_count));
  for (int v = 0; v < params.node_count; ++v) cid[static_cast<std::size_t>(v)] = v % 2;
  params.communities_override = std::make_shared<const core::CommunityTable>(cid);
  const ScenarioResult legacy = legacy_run_bus(params);
  const ScenarioResult via_spec = run_scenario(to_spec(params));
  expect_identical(legacy, via_spec);
}

TEST(SpecEquivalence, MixedGroupsRunAndCountNodes) {
  // The capability the params structs could not express: two mobility
  // models in one world. Sanity-level assertions (no legacy reference
  // exists, by definition).
  ScenarioSpec spec = parse_spec(
      "scenario.duration = 1200\n"
      "scenario.seed = 6\n"
      "map.kind = downtown\n"
      "map.rows = 6\nmap.cols = 8\nmap.districts = 2\nmap.routes_per_district = 2\n"
      "world.radio_range = 20\n"
      "traffic.ttl = 400\n"
      "group.buses.model = bus\n"
      "group.buses.count = 12\n"
      "group.walkers.model = random_waypoint\n"
      "group.walkers.count = 12\n"
      "protocol.name = Epidemic\n");
  const ScenarioResult r = run_scenario(spec);
  EXPECT_EQ(r.node_count, 24);
  EXPECT_GT(r.contact_events, 0);
  EXPECT_GT(r.metrics.created(), 0);
}

}  // namespace
}  // namespace dtn::harness
