// Crash-recovery equivalence properties for the journaled sweep engine:
// for ANY prefix of the journal a crash could leave behind — cut at a
// record boundary, torn mid-record, or bit-flipped — `resume` recomputes
// exactly the missing points and the final aggregates are BIT-IDENTICAL
// to an uninterrupted campaign, at thread counts 1 and 3. This is the
// in-process half of the acceptance gate; the real-SIGKILL half is the
// dtnsim_crash_resume ctest (cmake/dtnsim_crash_resume.cmake).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/journal.hpp"
#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"

namespace dtn::harness {
namespace {

/// Smallest sweepable world that still produces nonzero, copies-dependent
/// metrics (mirrors tests/cli/resume.cfg).
ScenarioSpec tiny_spec() {
  return parse_spec(
      "scenario.name = journal_prop\n"
      "scenario.duration = 1500\n"
      "scenario.seed = 7\n"
      "map.kind = open_field\n"
      "map.width = 120\n"
      "map.height = 120\n"
      "group.walkers.model = random_waypoint\n"
      "group.walkers.count = 8\n"
      "group.walkers.speed_min = 1\n"
      "group.walkers.speed_max = 3\n"
      "world.radio_range = 40\n"
      "protocol.name = EER\n"
      "protocol.copies = 4\n"
      "communities.count = 2\n"
      "traffic.interval_min = 20\n"
      "traffic.interval_max = 30\n");
}

SpecSweepOptions base_options(std::size_t threads) {
  SpecSweepOptions opt;
  opt.base = tiny_spec();
  opt.axes = {{"protocol.copies", {"2", "4", "8"}}};
  opt.seeds = 2;
  opt.threads = threads;
  return opt;
}

/// Bitwise equality of every aggregate — the acceptance bar is
/// bit-identical, not approximately-equal, so EXPECT_EQ on doubles is the
/// point, not an oversight.
void expect_bitwise_equal(const std::vector<SpecPointResult>& got,
                          const std::vector<SpecPointResult>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const PointResult& g = got[i].result;
    const PointResult& w = want[i].result;
    const std::string where = context + " point " + std::to_string(i);
    EXPECT_EQ(g.delivery_ratio.mean(), w.delivery_ratio.mean()) << where;
    EXPECT_EQ(g.delivery_ratio.stddev(), w.delivery_ratio.stddev()) << where;
    EXPECT_EQ(g.delivery_ratio.count(), w.delivery_ratio.count()) << where;
    EXPECT_EQ(g.latency.mean(), w.latency.mean()) << where;
    EXPECT_EQ(g.latency.stddev(), w.latency.stddev()) << where;
    EXPECT_EQ(g.goodput.mean(), w.goodput.mean()) << where;
    EXPECT_EQ(g.control_mb.mean(), w.control_mb.mean()) << where;
    EXPECT_EQ(g.relayed.mean(), w.relayed.mean()) << where;
    EXPECT_EQ(g.contacts.mean(), w.contacts.mean()) << where;
    EXPECT_EQ(g.contacts.stddev(), w.contacts.stddev()) << where;
  }
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string data;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, got);
  std::fclose(f);
  return data;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

class JournalPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string("journal_prop_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".dtnj";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(JournalPropertyTest, JournalingItselfChangesNothing) {
  // A journaled campaign and a journal-less one are the same campaign.
  for (const std::size_t threads : {1u, 3u}) {
    SpecSweepOptions plain = base_options(threads);
    const auto want = run_spec_sweep(plain);
    SpecSweepOptions journaled = base_options(threads);
    journaled.journal_path = path_;
    const auto got = run_spec_sweep(journaled);
    expect_bitwise_equal(got, want, "threads=" + std::to_string(threads));
    std::remove(path_.c_str());
  }
}

TEST_F(JournalPropertyTest, ResumeFromEveryRecordBoundaryIsBitIdentical) {
  // Simulate "SIGKILL right after record N was synced" for EVERY N by
  // truncating a complete journal at each record boundary, then resuming.
  // Covers the full acceptance matrix at thread counts 1 and 3.
  SpecSweepOptions ref = base_options(1);
  const auto want = run_spec_sweep(ref);

  SpecSweepOptions full = base_options(1);
  full.journal_path = path_;
  run_spec_sweep(full);
  const std::string bytes = read_file(path_);

  // Record boundaries: re-frame the replayed payloads to find the offsets.
  const JournalReadResult replay = read_journal(path_);
  ASSERT_FALSE(replay.tail_dropped());
  ASSERT_EQ(replay.records.size(), 4u);  // header + 3 points
  std::vector<std::size_t> boundaries = {0};
  for (const auto& payload : replay.records) {
    boundaries.push_back(boundaries.back() + frame_record(payload).size());
  }
  ASSERT_EQ(boundaries.back(), bytes.size());

  for (const std::size_t cut : boundaries) {
    for (const std::size_t threads : {1u, 3u}) {
      write_file(path_, bytes.substr(0, cut));
      SpecSweepOptions resume = base_options(threads);
      resume.journal_path = path_;
      resume.resume = true;
      const auto got = run_spec_sweep(resume);
      expect_bitwise_equal(got, want,
                           "cut=" + std::to_string(cut) +
                               " threads=" + std::to_string(threads));
      // Replayed points are flagged; recomputed ones are not. The header
      // is record 0, so a cut after record k+1 replays k points.
      std::size_t resumed = 0;
      for (const auto& point : got) resumed += point.exec.resumed ? 1 : 0;
      std::size_t expected_resumed = 0;
      for (std::size_t b = 2; b < boundaries.size(); ++b) {
        if (cut >= boundaries[b]) ++expected_resumed;
      }
      EXPECT_EQ(resumed, expected_resumed) << "cut=" << cut;
    }
  }
}

TEST_F(JournalPropertyTest, ResumeFromEveryTornPrefixIsBitIdentical) {
  // The torn-write property: cut the journal at EVERY byte offset (not
  // just record boundaries) — mid-frame, mid-payload, mid-checksum — and
  // resume. The corrupt tail must be dropped and recomputed, never
  // double-counted, never fatal.
  SpecSweepOptions ref = base_options(1);
  const auto want = run_spec_sweep(ref);

  SpecSweepOptions full = base_options(1);
  full.journal_path = path_;
  run_spec_sweep(full);
  const std::string bytes = read_file(path_);

  // A prime stride keeps the sampled cuts landing on every region of the
  // frame (magic, length, crc, payload) across records while holding the
  // test to sanitizer-budget wall time; the worst case per cut is a full
  // recompute of the tiny grid.
  for (std::size_t cut = 0; cut <= bytes.size(); cut += 29) {
    write_file(path_, bytes.substr(0, cut));
    SpecSweepOptions resume = base_options(1);
    resume.journal_path = path_;
    resume.resume = true;
    const auto got = run_spec_sweep(resume);
    expect_bitwise_equal(got, want, "torn at byte " + std::to_string(cut));
  }
}

TEST_F(JournalPropertyTest, BitFlipsNeverCorruptResults) {
  // Flip one bit somewhere in every region of the file; the damaged suffix
  // is recomputed and the aggregates still match bit-for-bit.
  SpecSweepOptions ref = base_options(1);
  const auto want = run_spec_sweep(ref);

  SpecSweepOptions full = base_options(1);
  full.journal_path = path_;
  run_spec_sweep(full);
  const std::string bytes = read_file(path_);

  for (std::size_t at = 0; at < bytes.size(); at += 37) {
    std::string mutated = bytes;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x10);
    write_file(path_, mutated);
    SpecSweepOptions resume = base_options(1);
    resume.journal_path = path_;
    resume.resume = true;
    // A flip inside the HEADER record makes the journal look like a
    // different campaign — refusing loudly is the correct behavior there;
    // flips behind the header must resume cleanly.
    try {
      const auto got = run_spec_sweep(resume);
      expect_bitwise_equal(got, want, "flip at byte " + std::to_string(at));
    } catch (const SweepJournalError&) {
      // Acceptable only if the flip landed in the fingerprint record —
      // i.e. the journal no longer identifies as this campaign.
      const JournalReadResult damaged = read_journal(path_);
      const bool header_intact =
          !damaged.records.empty() &&
          damaged.records.front().rfind("campaign ", 0) == 0;
      EXPECT_FALSE(header_intact)
          << "flip at byte " << at
          << " raised SweepJournalError with an intact header";
    }
  }
}

TEST_F(JournalPropertyTest, ResumeNeverDoubleCountsACompletedPoint) {
  // Resuming a COMPLETE journal must replay all points and run nothing:
  // every count stays `seeds`, not 2×seeds.
  SpecSweepOptions full = base_options(1);
  full.journal_path = path_;
  const auto want = run_spec_sweep(full);

  SpecSweepOptions resume = base_options(3);
  resume.journal_path = path_;
  resume.resume = true;
  int recomputed = 0;
  resume.progress = [&](const std::string&) { ++recomputed; };
  const auto got = run_spec_sweep(resume);
  EXPECT_EQ(recomputed, 0) << "a complete journal must not re-run anything";
  for (const auto& point : got) {
    EXPECT_TRUE(point.exec.resumed);
    EXPECT_EQ(point.result.delivery_ratio.count(), 2u);
  }
  expect_bitwise_equal(got, want, "complete-journal resume");
}

TEST_F(JournalPropertyTest, FailedRecordIsRetriedOnResume) {
  // A campaign whose point 1 failed (isolated) journals a failed record;
  // the resume recomputes exactly that point and ends bit-identical to a
  // never-failed campaign.
  SpecSweepOptions ref = base_options(1);
  const auto want = run_spec_sweep(ref);

  SweepFaultPlan fault;
  fault.action = SweepFaultPlan::Action::kThrow;
  fault.point = 1;
  fault.fires = 1000;  // every attempt of point 1 fails
  SpecSweepOptions faulty = base_options(1);
  faulty.journal_path = path_;
  faulty.isolate_failures = true;
  faulty.fault_plan = &fault;
  const auto crashed = run_spec_sweep(faulty);
  ASSERT_FALSE(crashed[1].exec.ok());
  EXPECT_NE(crashed[1].exec.error.find("injected fault"), std::string::npos);
  EXPECT_TRUE(crashed[0].exec.ok());
  EXPECT_TRUE(crashed[2].exec.ok());

  SpecSweepOptions resume = base_options(1);
  resume.journal_path = path_;
  resume.resume = true;
  int recomputed_runs = 0;
  resume.progress = [&](const std::string&) { ++recomputed_runs; };
  const auto got = run_spec_sweep(resume);
  EXPECT_EQ(recomputed_runs, resume.seeds) << "only the failed point re-runs";
  EXPECT_TRUE(got[1].exec.ok());
  EXPECT_FALSE(got[1].exec.resumed);
  EXPECT_TRUE(got[0].exec.resumed);
  EXPECT_TRUE(got[2].exec.resumed);
  expect_bitwise_equal(got, want, "failed-record resume");
}

TEST_F(JournalPropertyTest, ForeignJournalIsRefusedLoudly) {
  // Same path, different campaign (axis values changed): resume must
  // refuse, not silently mix two campaigns' points.
  SpecSweepOptions first = base_options(1);
  first.journal_path = path_;
  run_spec_sweep(first);

  SpecSweepOptions other = base_options(1);
  other.axes = {{"protocol.copies", {"2", "16"}}};
  other.journal_path = path_;
  other.resume = true;
  EXPECT_THROW(run_spec_sweep(other), SweepJournalError);

  // Seed-base change is also a different campaign.
  SpecSweepOptions reseeded = base_options(1);
  reseeded.seed_base = 99;
  reseeded.journal_path = path_;
  reseeded.resume = true;
  EXPECT_THROW(run_spec_sweep(reseeded), SweepJournalError);
}

TEST_F(JournalPropertyTest, FreshCampaignOwnsAStaleJournalPath) {
  // Without resume, a pre-existing journal at the path is truncated — its
  // stale records must not shadow the new campaign on a LATER resume.
  SpecSweepOptions first = base_options(1);
  first.journal_path = path_;
  run_spec_sweep(first);
  const std::string old_bytes = read_file(path_);

  SpecSweepOptions fresh = base_options(1);
  fresh.seed_base = 1234;  // different campaign, same path, no resume
  fresh.journal_path = path_;
  const auto want = run_spec_sweep(fresh);

  const std::string new_bytes = read_file(path_);
  EXPECT_NE(new_bytes, old_bytes);

  SpecSweepOptions resume = base_options(1);
  resume.seed_base = 1234;
  resume.journal_path = path_;
  resume.resume = true;
  const auto got = run_spec_sweep(resume);
  for (const auto& point : got) EXPECT_TRUE(point.exec.resumed);
  expect_bitwise_equal(got, want, "resume after fresh overwrite");
}

}  // namespace
}  // namespace dtn::harness
