// Per-point failure isolation, retry, timeout, and the exception-context
// fix: a failing sweep point must either name itself in the rethrown
// error (fail-fast mode) or be recorded failed-with-reason while the rest
// of the campaign completes (isolate_failures).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"

namespace dtn::harness {
namespace {

ScenarioSpec tiny_spec() {
  return parse_spec(
      "scenario.name = robustness\n"
      "scenario.duration = 600\n"
      "scenario.seed = 7\n"
      "map.kind = open_field\n"
      "map.width = 120\n"
      "map.height = 120\n"
      "group.walkers.model = random_waypoint\n"
      "group.walkers.count = 8\n"
      "group.walkers.speed_min = 1\n"
      "group.walkers.speed_max = 3\n"
      "world.radio_range = 40\n"
      "protocol.name = EER\n"
      "protocol.copies = 4\n"
      "communities.count = 2\n"
      "traffic.interval_min = 20\n"
      "traffic.interval_max = 30\n"
      "traffic.ttl = 300\n");  // full_ttl_window needs ttl < duration
}

SpecSweepOptions two_point_options() {
  SpecSweepOptions opt;
  opt.base = tiny_spec();
  opt.axes = {{"protocol.copies", {"2", "4"}}};
  opt.seeds = 2;
  opt.threads = 1;
  return opt;
}

TEST(SweepRobustness, FailFastErrorNamesThePoint) {
  // The satellite fix: before it, the pool surfaced the bare what() with
  // no clue which of the grid's runs died.
  SweepFaultPlan fault;
  fault.action = SweepFaultPlan::Action::kThrow;
  fault.point = 1;
  fault.fires = 1000;
  SpecSweepOptions opt = two_point_options();
  opt.fault_plan = &fault;
  try {
    run_spec_sweep(opt);
    FAIL() << "expected the injected fault to propagate";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("protocol.copies=4"), std::string::npos) << what;
    EXPECT_NE(what.find("seed="), std::string::npos) << what;
    EXPECT_NE(what.find("injected fault"), std::string::npos) << what;
  }
}

TEST(SweepRobustness, FailFastErrorNamesThePointAcrossThreads) {
  SweepFaultPlan fault;
  fault.action = SweepFaultPlan::Action::kThrow;
  fault.point = 0;
  fault.fires = 1000;
  SpecSweepOptions opt = two_point_options();
  opt.threads = 3;
  opt.fault_plan = &fault;
  try {
    run_spec_sweep(opt);
    FAIL() << "expected the injected fault to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("protocol.copies=2"), std::string::npos)
        << e.what();
  }
}

TEST(SweepRobustness, IsolationRecordsTheFailureAndFinishesTheRest) {
  SweepFaultPlan fault;
  fault.action = SweepFaultPlan::Action::kThrow;
  fault.point = 0;
  fault.fires = 1000;
  SpecSweepOptions opt = two_point_options();
  opt.isolate_failures = true;
  opt.fault_plan = &fault;
  const auto results = run_spec_sweep(opt);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].exec.ok());
  EXPECT_NE(results[0].exec.error.find("injected fault"), std::string::npos);
  EXPECT_EQ(results[0].result.delivery_ratio.count(), 0u)
      << "a failed point must not fold partial samples";
  EXPECT_TRUE(results[1].exec.ok());
  EXPECT_EQ(results[1].result.delivery_ratio.count(), 2u);
  EXPECT_GT(results[1].result.contacts.mean(), 0.0);
}

TEST(SweepRobustness, RetriesRecoverATransientFailure) {
  // fires=1: the first attempt of point 1 throws, the retry succeeds.
  SweepFaultPlan fault;
  fault.action = SweepFaultPlan::Action::kThrow;
  fault.point = 1;
  fault.fires = 1;
  SpecSweepOptions opt = two_point_options();
  opt.retries = 2;
  opt.fault_plan = &fault;

  // No isolation needed: the retry succeeds, so nothing propagates.
  const auto results = run_spec_sweep(opt);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[1].exec.ok());
  // seeds attempts + 1 failed first attempt.
  EXPECT_EQ(results[1].exec.tries, opt.seeds + 1);
  EXPECT_EQ(results[0].exec.tries, opt.seeds);
  EXPECT_EQ(results[1].result.delivery_ratio.count(), 2u);

  // Retried point aggregates match an undisturbed run bit-for-bit (the
  // retry reruns the same spec + seed on the same warm runner).
  SpecSweepOptions clean = two_point_options();
  const auto want = run_spec_sweep(clean);
  EXPECT_EQ(results[1].result.delivery_ratio.mean(),
            want[1].result.delivery_ratio.mean());
  EXPECT_EQ(results[1].result.contacts.mean(), want[1].result.contacts.mean());
}

TEST(SweepRobustness, RetriesExhaustedReportsAttemptCount) {
  SweepFaultPlan fault;
  fault.action = SweepFaultPlan::Action::kThrow;
  fault.point = 0;
  fault.fires = 1000;
  SpecSweepOptions opt = two_point_options();
  opt.retries = 2;
  opt.isolate_failures = true;
  opt.fault_plan = &fault;
  const auto results = run_spec_sweep(opt);
  EXPECT_FALSE(results[0].exec.ok());
  // Every seed burned 1 + retries attempts.
  EXPECT_EQ(results[0].exec.tries, opt.seeds * (1 + opt.retries));
}

TEST(SweepRobustness, TimeoutAbandonsAHungPoint) {
  // Point 0's attempts stall 1500 ms against a 100 ms budget: the watchdog
  // abandons them, the point records a timeout, and point 1 still
  // completes on the worker's replacement runner.
  SweepFaultPlan fault;
  fault.action = SweepFaultPlan::Action::kHang;
  fault.point = 0;
  fault.hang_ms = 1500;
  fault.fires = 1000;
  SpecSweepOptions opt = two_point_options();
  opt.point_timeout_s = 0.1;
  opt.isolate_failures = true;
  opt.fault_plan = &fault;
  const auto results = run_spec_sweep(opt);
  EXPECT_FALSE(results[0].exec.ok());
  EXPECT_NE(results[0].exec.error.find("timed out"), std::string::npos)
      << results[0].exec.error;
  EXPECT_TRUE(results[1].exec.ok());
  EXPECT_EQ(results[1].result.delivery_ratio.count(), 2u);

  // The timed-out attempts' helper threads are detached and still hold
  // their runners; outlive them before the test exits so the sanitizer
  // sweep sees no in-flight allocations.
  std::this_thread::sleep_for(std::chrono::milliseconds(2000));
}

TEST(SweepRobustness, TimeoutGenerousEnoughChangesNothing) {
  // A timeout that never fires must not perturb the aggregates — the
  // watchdog path runs the same spec on the same runner.
  SpecSweepOptions plain = two_point_options();
  const auto want = run_spec_sweep(plain);
  SpecSweepOptions guarded = two_point_options();
  guarded.point_timeout_s = 300.0;
  const auto got = run_spec_sweep(guarded);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].result.delivery_ratio.mean(),
              want[i].result.delivery_ratio.mean());
    EXPECT_EQ(got[i].result.latency.mean(), want[i].result.latency.mean());
    EXPECT_EQ(got[i].result.contacts.mean(), want[i].result.contacts.mean());
  }
}

TEST(SweepRobustness, IsolatedFailuresAppearInTheJsonSchema) {
  SweepFaultPlan fault;
  fault.action = SweepFaultPlan::Action::kThrow;
  fault.point = 0;
  fault.fires = 1000;
  SpecSweepOptions opt = two_point_options();
  opt.isolate_failures = true;
  opt.fault_plan = &fault;
  const auto results = run_spec_sweep(opt);
  const std::string json = sweep_results_json(opt, results);
  EXPECT_NE(json.find("\"failed_points\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos) << json;
  EXPECT_NE(json.find("injected fault"), std::string::npos) << json;
  // Volatile execution metadata stays on `"exec`-substring lines — the
  // filterability contract the crash-equivalence tooling relies on.
  EXPECT_NE(json.find("\"execution\""), std::string::npos);
  EXPECT_NE(json.find("\"exec\""), std::string::npos);
}

}  // namespace
}  // namespace dtn::harness
