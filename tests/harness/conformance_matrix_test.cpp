// Cross-registry conformance matrix: programmatically enumerates EVERY
// registered (map kind x mobility model x protocol x communities source)
// combination — walking geo::map_kind_names(), mobility_model_names(),
// routing::known_protocols() and harness::community_source_names() at
// runtime, so a registry entry added later is covered automatically with
// no test edit — and, per cell, either
//   - the spec is structurally incompatible (e.g. a bus group on an open
//     field): validate_spec AND run must both reject it (check-rejects-
//     what-run-rejects), or
//   - the cell executes a short world and must satisfy the full conformance
//     contract: spec round-trip identity (to_config -> parse -> to_config),
//     deterministic per-seed replay, bit-identical metrics on a reused
//     runner (World::reset capacity retention across foreign scenarios) and
//     across sweep thread counts (1 vs 3 workers over a protocol axis).
// A final section runs heterogeneous cells (two groups, per-group protocol
// overrides) through the same checks plus the per-group metric buckets.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "geo/map_registry.hpp"
#include "geo/trace.hpp"
#include "harness/scenario.hpp"
#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"
#include "mobility/registry.hpp"
#include "routing/factory.hpp"

namespace dtn::harness {
namespace {

/// Tiny world sizes keep the full matrix (hundreds of cells) seconds-fast,
/// including under ASan/UBSan: ~40 steps x <= 8 nodes per run.
constexpr double kDuration = 20.0;
constexpr int kNodes = 6;

/// Trace fixture shared by every trace-map cell: kNodes nodes drifting
/// right at distinct heights, close enough to meet the 60 m radio.
std::string trace_fixture_path() {
  static const std::string path = [] {
    geo::Trace trace;
    for (int node = 0; node < kNodes; ++node) {
      for (int t = 0; t <= 2; ++t) {
        trace.samples.push_back(geo::TraceSample{
            t * 10.0, node, {20.0 * t + 5.0 * node, 30.0 * node}});
      }
    }
    const std::string p = ::testing::TempDir() + "/conformance_matrix.trace";
    EXPECT_TRUE(geo::write_trace(p, trace));
    return p;
  }();
  return path;
}

/// The cell spec: one group of `model` nodes on `kind`, running `protocol`
/// with `source` communities. Map parameters are the smallest instance of
/// each kind that still produces contacts.
ScenarioSpec cell_spec(const std::string& kind, const std::string& model,
                       const std::string& protocol, const std::string& source) {
  ScenarioSpec spec;
  spec.name = "cell";
  spec.duration_s = kDuration;
  spec.seed = 7;
  spec.world.step_dt = 0.5;
  spec.world.radio_range = 60.0;
  spec.world.ttl_sweep_interval = 5.0;
  spec.traffic.interval_min = 1.0;
  spec.traffic.interval_max = 3.0;
  spec.traffic.size_bytes = 2048;
  spec.traffic.ttl = 10.0;

  spec.map.kind = kind;
  spec.map.params.downtown.rows = 4;
  spec.map.params.downtown.cols = 4;
  spec.map.params.downtown.block_m = 80.0;
  spec.map.params.downtown.districts = 2;
  spec.map.params.downtown.routes_per_district = 1;
  spec.map.params.width = 250.0;
  spec.map.params.height = 250.0;
  spec.map.params.trace_file = trace_fixture_path();

  GroupSpec group;
  group.name = "g0";
  group.model = model;
  group.count = kNodes;
  group.params.waypoint.speed_min = 2.0;
  group.params.waypoint.speed_max = 8.0;
  group.params.community.speed_min = 2.0;
  group.params.community.speed_max = 8.0;
  spec.groups.push_back(std::move(group));

  spec.protocol.name = protocol;
  spec.protocol.copies = 4;
  spec.communities.source = source;
  spec.communities.count = 2;
  spec.communities.warmup_s = 10.0;
  return spec;
}

std::string cell_label(const ScenarioSpec& spec) {
  return spec.map.kind + "/" + spec.groups[0].model + "/" + spec.protocol.name + "/" +
         spec.communities.source;
}

/// The metric fields two conforming runs must agree on bit for bit.
void expect_identical(const ScenarioResult& a, const ScenarioResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.metrics.created(), b.metrics.created()) << label;
  EXPECT_EQ(a.metrics.delivered(), b.metrics.delivered()) << label;
  EXPECT_EQ(a.metrics.relayed(), b.metrics.relayed()) << label;
  EXPECT_EQ(a.metrics.transfers_started(), b.metrics.transfers_started()) << label;
  EXPECT_EQ(a.metrics.transfers_aborted(), b.metrics.transfers_aborted()) << label;
  EXPECT_EQ(a.metrics.dropped(), b.metrics.dropped()) << label;
  EXPECT_EQ(a.metrics.expired(), b.metrics.expired()) << label;
  EXPECT_EQ(a.metrics.control_bytes(), b.metrics.control_bytes()) << label;
  EXPECT_EQ(a.metrics.latency_mean(), b.metrics.latency_mean()) << label;
  EXPECT_EQ(a.metrics.hop_count_mean(), b.metrics.hop_count_mean()) << label;
  EXPECT_EQ(a.contact_events, b.contact_events) << label;
}

bool spec_is_valid(const ScenarioSpec& spec) {
  try {
    validate_spec(spec);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

/// Shared across ALL valid cells, so each cell also exercises World::reset
/// reuse coming from a FOREIGN scenario (different map, model, protocol).
ScenarioRunner& reused_runner() {
  static ScenarioRunner runner;
  return runner;
}

void check_cell(const ScenarioSpec& spec) {
  const std::string label = cell_label(spec);

  // Spec round-trip identity.
  const std::string config = to_config(spec);
  ScenarioSpec parsed;
  std::vector<SpecDiagnostic> diagnostics;
  ASSERT_TRUE(try_parse_spec(config, parsed, diagnostics))
      << label << ": " << (diagnostics.empty() ? "?" : diagnostics.front().message);
  EXPECT_EQ(to_config(parsed), config) << label;

  // Deterministic per-seed replay on fresh runners.
  const ScenarioResult fresh = ScenarioRunner().run(spec);
  const ScenarioResult replay = ScenarioRunner().run(spec);
  EXPECT_GT(fresh.metrics.created(), 0) << label << ": cell ran no traffic";
  expect_identical(fresh, replay, label + " [replay]");

  // Bit-identical on the runner reused across every previous cell.
  const ScenarioResult reused = reused_runner().run(spec);
  expect_identical(fresh, reused, label + " [reused world]");

  // And through the parsed copy (round-trip must preserve execution, not
  // just text).
  const ScenarioResult from_parsed = reused_runner().run(parsed);
  expect_identical(fresh, from_parsed, label + " [parsed spec]");
}

TEST(ConformanceMatrix, EveryRegistryCombinationConformsOrIsRejectedLoudly) {
  int valid_cells = 0;
  int rejected_cells = 0;
  for (const auto& kind : geo::map_kind_names()) {
    for (const auto& model : mobility::mobility_model_names()) {
      for (const auto& source : community_source_names()) {
        for (const auto& protocol : routing::known_protocols()) {
          const ScenarioSpec spec = cell_spec(kind, model, protocol, source);
          if (!spec_is_valid(spec)) {
            // check-rejects-what-run-rejects: the executor must refuse too.
            EXPECT_THROW(run_scenario(spec), std::invalid_argument)
                << cell_label(spec);
            ++rejected_cells;
            continue;
          }
          check_cell(spec);
          if (HasFatalFailure()) return;
          ++valid_cells;
        }
      }
    }
  }
  // The matrix must have real coverage on both sides (a registry change
  // that silently invalidated everything would otherwise pass vacuously).
  EXPECT_GE(valid_cells, 100) << "matrix lost execution coverage";
  EXPECT_GE(rejected_cells, 1) << "matrix lost rejection coverage";
}

TEST(ConformanceMatrix, SweepAggregatesAreBitIdenticalAcrossThreadCounts) {
  // Per (map kind x model x source): sweep the full protocol registry as an
  // axis with 1 worker vs 3, and compare every aggregate bitwise. Together
  // with the per-cell checks above this pins every matrix cell's metrics
  // across thread counts without re-running each protocol separately.
  for (const auto& kind : geo::map_kind_names()) {
    for (const auto& model : mobility::mobility_model_names()) {
      for (const auto& source : community_source_names()) {
        ScenarioSpec base = cell_spec(kind, model, "Epidemic", source);
        if (!spec_is_valid(base)) continue;

        SpecSweepOptions options;
        options.base = base;
        options.axes = {SweepAxis{"protocol.name", routing::known_protocols()}};
        options.seeds = 1;
        options.seed_base = 42;
        options.threads = 1;
        const auto serial = run_spec_sweep(options);
        options.threads = 3;
        const auto parallel = run_spec_sweep(options);

        const std::string label = kind + "/" + model + "/" + source;
        ASSERT_EQ(serial.size(), parallel.size()) << label;
        for (std::size_t p = 0; p < serial.size(); ++p) {
          EXPECT_EQ(serial[p].overrides, parallel[p].overrides) << label;
          for (const auto metric :
               {Metric::kDeliveryRatio, Metric::kLatency, Metric::kGoodput,
                Metric::kControlMb, Metric::kRelayed}) {
            EXPECT_EQ(metric_value(serial[p].result, metric),
                      metric_value(parallel[p].result, metric))
                << label << " " << serial[p].label();
          }
          EXPECT_EQ(serial[p].result.contacts.mean(),
                    parallel[p].result.contacts.mean())
              << label << " " << serial[p].label();
        }
      }
    }
  }
}

TEST(ConformanceMatrix, HeterogeneousPerGroupProtocolCellsConform) {
  // Two-group cells per map kind: the mobile model native to the map plus a
  // stationary relay group running a DIFFERENT protocol — the per-group
  // override path through the same conformance checks.
  const std::map<std::string, std::string> mobile_model{
      {"downtown", "bus"}, {"open_field", "random_waypoint"}, {"trace", "trace"}};
  for (const auto& kind : geo::map_kind_names()) {
    const auto it = mobile_model.find(kind);
    if (it == mobile_model.end()) continue;  // future kinds: no pairing known
    for (const auto& source : community_source_names()) {
      ScenarioSpec spec = cell_spec(kind, it->second, "SprayAndWait", source);
      GroupSpec relays;
      relays.name = "relays";
      relays.model = "stationary";
      relays.count = 3;
      relays.protocol = "Epidemic";  // heterogeneous routing in one world
      relays.params.stationary.margin = 20.0;
      spec.groups.push_back(std::move(relays));
      ASSERT_TRUE(spec_is_valid(spec)) << cell_label(spec);
      check_cell(spec);
      if (HasFatalFailure()) return;

      // Per-group buckets: consistent with the headline totals.
      const ScenarioResult result = ScenarioRunner().run(spec);
      ASSERT_TRUE(result.metrics.has_groups());
      ASSERT_EQ(result.metrics.group_count(), 2);
      std::int64_t created_sum = 0;
      std::int64_t delivered_sum = 0;
      for (int g = 0; g < result.metrics.group_count(); ++g) {
        EXPECT_GE(result.metrics.group_created(g), 0);
        EXPECT_LE(result.metrics.group_delivered(g), result.metrics.group_created(g));
        created_sum += result.metrics.group_created(g);
        delivered_sum += result.metrics.group_delivered(g);
      }
      EXPECT_EQ(created_sum, result.metrics.created()) << cell_label(spec);
      EXPECT_EQ(delivered_sum, result.metrics.delivered()) << cell_label(spec);
    }
  }
}

TEST(ConformanceMatrix, SweepResultsJsonCarriesTheDocumentedSchema) {
  // The machine-readable `sweep --out` surface: every documented field of
  // the dtnsim-sweep/1 schema must be present, one point per grid cell, and
  // the output must be structurally sound (balanced braces/brackets — we
  // ship no JSON parser, so structure is checked by counting).
  SpecSweepOptions options;
  options.base = cell_spec("open_field", "random_waypoint", "Epidemic", "auto");
  options.axes = {SweepAxis{"protocol.name", {"Epidemic", "DirectDelivery"}},
                  SweepAxis{"scenario.nodes", {"4", "6"}}};
  options.seeds = 2;
  options.seed_base = 77;
  options.threads = 1;
  const auto results = run_spec_sweep(options);
  const std::string json = sweep_results_json(options, results);

  for (const std::string field :
       {"\"schema\": \"dtnsim-sweep/1\"", "\"scenario\": \"cell\"", "\"seeds\": 2",
        "\"seed_base\": 77", "\"axes\":", "\"points\":", "\"overrides\":",
        "\"protocol\":", "\"nodes\":", "\"metrics\":", "\"delivery_ratio\":",
        "\"latency_s\":", "\"goodput\":", "\"control_MB\":", "\"relayed\":",
        "\"contacts\":", "\"mean\":", "\"stddev\":", "\"count\": 2"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // One "overrides" object per grid point, cross product = 2 x 2.
  std::size_t points = 0;
  for (std::size_t at = json.find("\"overrides\""); at != std::string::npos;
       at = json.find("\"overrides\"", at + 1)) {
    ++points;
  }
  EXPECT_EQ(points, 4u);
  for (const auto& [open, close] : {std::pair{'{', '}'}, std::pair{'[', ']'}}) {
    EXPECT_EQ(std::count(json.begin(), json.end(), open),
              std::count(json.begin(), json.end(), close));
  }
}

/// Traffic-trace fixture for the workload-variant cells: a handful of
/// messages inside the cell's [0, duration - ttl] creation window.
std::string traffic_trace_fixture_path() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "/conformance_traffic.trace";
    std::ofstream out(p);
    out << "# time src dst [size_bytes [ttl]]\n"
        << "1.0 0 1\n"
        << "2.0 1 2\n"
        << "4.5 2 3 4096\n"
        << "6.0 3 4 0 5\n"
        << "9.0 4 5\n";
    return p;
  }();
  return path;
}

TEST(ConformanceMatrix, WorkloadVariantCellsConform) {
  // The traffic subsystem's whole spec surface — matrix entries, temporal
  // profiles, trace replay — through the same conformance contract as the
  // registry cells: round-trip identity, per-seed replay, reused-runner
  // and parsed-copy bit-identity.
  const std::vector<std::pair<std::string, void (*)(ScenarioSpec&)>> variants = {
      {"matrix",
       [](ScenarioSpec& spec) {
         GroupSpec relays;
         relays.name = "relays";
         relays.model = "stationary";
         relays.count = 3;
         relays.params.stationary.margin = 20.0;
         spec.groups.push_back(std::move(relays));
         spec.traffic_matrix = {TrafficEntrySpec{"g0", "relays", 1.0, 2.0, 2048, 2.0},
                                TrafficEntrySpec{"g0", "g0", 2.0, 4.0, 1024, 1.0}};
       }},
      {"onoff",
       [](ScenarioSpec& spec) {
         spec.traffic.profile = sim::TrafficProfile::kOnOff;
         spec.traffic.on_s = 6.0;
         spec.traffic.off_s = 3.0;
         spec.traffic.phase_s = 1.0;
       }},
      {"diurnal",
       [](ScenarioSpec& spec) {
         spec.traffic.profile = sim::TrafficProfile::kDiurnal;
         spec.traffic.interval_min = 0.5;  // keep enough accepted candidates
         spec.traffic.interval_max = 1.0;
         spec.traffic.period_s = 10.0;
         spec.traffic.phase_s = 2.0;
       }},
      {"trace",
       [](ScenarioSpec& spec) {
         spec.traffic.profile = sim::TrafficProfile::kTrace;
         spec.traffic_file = traffic_trace_fixture_path();
       }},
  };
  for (const auto& [name, mutate] : variants) {
    ScenarioSpec spec = cell_spec("open_field", "random_waypoint", "Epidemic", "auto");
    spec.name = "workload_" + name;
    mutate(spec);
    ASSERT_TRUE(spec_is_valid(spec)) << name;
    check_cell(spec);
    if (HasFatalFailure()) return;
  }
}

TEST(ConformanceMatrix, StationaryPlacementsBehaveAsDocumented) {
  // grid placement is seed-independent; uniform placement varies per seed
  // but replays deterministically — checked through full runs so the lane
  // init path (not just the builder) is what's pinned.
  for (const std::string placement : {"grid", "uniform"}) {
    ScenarioSpec spec = cell_spec("open_field", "stationary", "Epidemic", "auto");
    spec.groups[0].params.stationary.placement = placement;
    ScenarioSpec reseeded = spec;
    reseeded.seed = spec.seed + 1;

    const ScenarioResult a1 = ScenarioRunner().run(spec);
    const ScenarioResult a2 = ScenarioRunner().run(spec);
    expect_identical(a1, a2, placement + " [replay]");

    const ScenarioResult b = ScenarioRunner().run(reseeded);
    if (placement == "grid") {
      // Same fixed positions -> same contact structure at any seed (traffic
      // still differs, so only the contact layer is comparable).
      EXPECT_EQ(a1.contact_events, b.contact_events);
    }
  }
  // Uniform placement actually moves with the seed: compare via the
  // movement-level positions of two one-node worlds.
  ScenarioSpec spec = cell_spec("open_field", "stationary", "Epidemic", "auto");
  spec.groups[0].params.stationary.placement = "uniform";
  // A 1x1 grid cell in the center vs a uniform draw can only coincide by
  // measure-zero accident; two different seeds drawing the same uniform
  // position likewise.
  const geo::MapKindInfo* kind = geo::find_map_kind("open_field");
  const geo::BuiltMap map = kind->build(spec.map.params, spec.seed);
  sim::WorldConfig config = spec.world;
  auto build_world_pos = [&](std::uint64_t seed) {
    config.seed = seed;
    sim::World world(config);
    GroupSpec one = spec.groups[0];
    one.count = 1;
    GroupBuildContext ctx{spec, map, 0, {}};
    ctx.make_router = [] {
      routing::ProtocolConfig protocol;
      protocol.name = "Epidemic";
      return routing::create_router(protocol);
    };
    find_group_builder("stationary")->add_nodes(world, ctx, one);
    return world.position_of(0);
  };
  const geo::Vec2 p1 = build_world_pos(1);
  const geo::Vec2 p2 = build_world_pos(2);
  EXPECT_NE(p1, p2) << "uniform placement ignored the seed";
}

}  // namespace
}  // namespace dtn::harness
