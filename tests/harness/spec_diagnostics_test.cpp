// Spec parser diagnostics: line-numbered unknown-key and bad-value
// reporting, multi-error collection, suggestions, and the structural rules
// (group declaration order, scenario.nodes alias, validate_spec).
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/spec_io.hpp"

namespace dtn::harness {
namespace {

std::vector<SpecDiagnostic> diagnostics_of(const std::string& text) {
  ScenarioSpec spec;
  std::vector<SpecDiagnostic> diagnostics;
  EXPECT_FALSE(try_parse_spec(text, spec, diagnostics));
  return diagnostics;
}

TEST(SpecDiagnostics, UnknownTopLevelKeyHasLineNumberAndSuggestion) {
  const auto diagnostics = diagnostics_of(
      "scenario.duration = 100\n"
      "scenario.sed = 7\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].line, 2);
  EXPECT_NE(diagnostics[0].message.find("unknown key 'scenario.sed'"),
            std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("did you mean 'scenario.seed'"),
            std::string::npos);
}

TEST(SpecDiagnostics, BadValueNamesTheKeyAndLine) {
  const auto diagnostics = diagnostics_of("scenario.duration = fast\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].line, 1);
  EXPECT_NE(diagnostics[0].message.find("bad value 'fast'"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("scenario.duration"), std::string::npos);
}

TEST(SpecDiagnostics, AllProblemsAreCollectedNotJustTheFirst) {
  const auto diagnostics = diagnostics_of(
      "scenario.duration = abc\n"
      "this line has no equals\n"
      "world.radio_rnage = 10\n");
  ASSERT_EQ(diagnostics.size(), 3u);
  EXPECT_EQ(diagnostics[0].line, 1);
  EXPECT_EQ(diagnostics[1].line, 2);
  EXPECT_EQ(diagnostics[2].line, 3);
  EXPECT_NE(diagnostics[1].message.find("expected 'key = value'"), std::string::npos);
  EXPECT_NE(diagnostics[2].message.find("did you mean 'world.radio_range'"),
            std::string::npos);
}

TEST(SpecDiagnostics, ParseSpecThrowsWithJoinedMessage) {
  try {
    parse_spec("protocol.copies = many\nscenario.bogus = 1\n");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.diagnostics().size(), 2u);
    const std::string what = e.what();
    EXPECT_NE(what.find("spec:1:"), std::string::npos);
    EXPECT_NE(what.find("spec:2:"), std::string::npos);
  }
}

TEST(SpecDiagnostics, UnknownMobilityModelListsKnownOnes) {
  const auto diagnostics = diagnostics_of("group.g.model = teleport\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NE(diagnostics[0].message.find("unknown mobility model 'teleport'"),
            std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("random_waypoint"), std::string::npos);
}

TEST(SpecDiagnostics, GroupParamBeforeModelIsRejected) {
  const auto diagnostics = diagnostics_of("group.g.count = 10\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NE(diagnostics[0].message.find("group.g.model"), std::string::npos);
}

TEST(SpecDiagnostics, ModelSpecificKeyOfWrongModelNamesTheVocabulary) {
  const auto diagnostics = diagnostics_of(
      "group.g.model = bus\n"
      "group.g.home_prob = 0.9\n");  // community key on a bus group
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].line, 2);
  EXPECT_NE(diagnostics[0].message.find("mobility model 'bus'"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("stop_spacing"), std::string::npos);
}

TEST(SpecDiagnostics, UnknownMapKindAndWrongKindKeys) {
  auto diagnostics = diagnostics_of("map.kind = torus\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NE(diagnostics[0].message.find("unknown map kind 'torus'"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("open_field"), std::string::npos);

  diagnostics = diagnostics_of(
      "map.kind = open_field\n"
      "map.rows = 12\n");  // downtown key on an open field
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].line, 2);
  EXPECT_NE(diagnostics[0].message.find("map kind 'open_field'"), std::string::npos);
}

TEST(SpecDiagnostics, NodesAliasRequiresExactlyOneGroup) {
  auto diagnostics = diagnostics_of("scenario.nodes = 40\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NE(diagnostics[0].message.find("exactly one group"), std::string::npos);

  diagnostics = diagnostics_of(
      "group.a.model = bus\n"
      "group.b.model = random_waypoint\n"
      "scenario.nodes = 40\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].line, 3);
}

TEST(SpecDiagnostics, CommunitiesSourceIsValidated) {
  const auto diagnostics = diagnostics_of("communities.source = psychic\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NE(diagnostics[0].message.find("auto | round_robin"), std::string::npos);
}

TEST(SpecDiagnostics, ApplyOverrideThrowsSpecError) {
  ScenarioSpec spec = to_spec(BusScenarioParams{});
  EXPECT_THROW(apply_override(spec, "protocol.copeis", "3"), SpecError);
  EXPECT_THROW(apply_override(spec, "protocol.copies", "several"), SpecError);
  EXPECT_THROW(apply_override(spec, "group.nosuch.count", "3"), SpecError);
  EXPECT_NO_THROW(apply_override(spec, "protocol.copies", "3"));
  EXPECT_EQ(spec.protocol.copies, 3);
}

TEST(SpecDiagnostics, SplitAssignmentRejectsMissingEquals) {
  EXPECT_THROW(split_assignment("protocol.copies"), SpecError);
  const auto [key, value] = split_assignment(" protocol.copies = 5 ");
  EXPECT_EQ(key, "protocol.copies");
  EXPECT_EQ(value, "5");
}

TEST(SpecDiagnostics, ValidateSpecCatchesStructuralProblems) {
  ScenarioSpec empty;
  EXPECT_THROW(validate_spec(empty), std::invalid_argument);  // no groups

  ScenarioSpec bad_protocol = to_spec(BusScenarioParams{});
  bad_protocol.protocol.name = "NoSuchProtocol";
  EXPECT_THROW(validate_spec(bad_protocol), std::invalid_argument);

  ScenarioSpec duplicate = to_spec(BusScenarioParams{});
  duplicate.groups.push_back(duplicate.groups[0]);
  EXPECT_THROW(validate_spec(duplicate), std::invalid_argument);

  // Model/map capability mismatches are caught at validation, so
  // `dtnsim check` rejects exactly what run would reject.
  ScenarioSpec bus_on_field = to_spec(BusScenarioParams{});
  apply_override(bus_on_field, "map.kind", "open_field");
  EXPECT_THROW(validate_spec(bus_on_field), std::invalid_argument);

  ScenarioSpec trace_on_downtown;
  apply_override(trace_on_downtown, "group.replay.model", "trace");
  apply_override(trace_on_downtown, "group.replay.count", "4");
  EXPECT_THROW(validate_spec(trace_on_downtown), std::invalid_argument);

  // Group names become config-key segments, so the serialized form must
  // stay parseable: dots, '#', '=', whitespace are rejected.
  for (const std::string bad_name : {"city.buses", "bu ses", "a#b", "a=b", ""}) {
    ScenarioSpec bad = to_spec(BusScenarioParams{});
    bad.groups[0].name = bad_name;
    EXPECT_THROW(validate_spec(bad), std::invalid_argument) << bad_name;
  }

  // Model-specific enum-like strings: the parser vets these per key, but a
  // programmatic spec skips the parser — validation must still reject what
  // add_nodes would silently misinterpret (and to_config would emit in a
  // form load_spec refuses, breaking round-trip identity).
  ScenarioSpec bad_placement;
  apply_override(bad_placement, "group.relays.model", "stationary");
  apply_override(bad_placement, "group.relays.count", "4");
  bad_placement.groups[0].params.stationary.placement = "Uniform";
  EXPECT_THROW(validate_spec(bad_placement), std::invalid_argument);

  ScenarioSpec bad_margin;
  apply_override(bad_margin, "group.relays.model", "stationary");
  apply_override(bad_margin, "group.relays.count", "4");
  apply_override(bad_margin, "group.relays.margin", "-150");
  EXPECT_THROW(validate_spec(bad_margin), std::invalid_argument);

  ScenarioSpec ok = to_spec(BusScenarioParams{});
  EXPECT_NO_THROW(validate_spec(ok));
}

TEST(SpecDiagnostics, BusGroupOnOpenFieldFailsAtBuildWithContext) {
  ScenarioSpec spec = to_spec(BusScenarioParams{});
  spec.duration_s = 10.0;
  apply_override(spec, "map.kind", "open_field");
  try {
    run_scenario(spec);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("requires a map with routes"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace dtn::harness
