// Metamorphic properties of spec execution: relations that must hold
// BETWEEN runs of systematically transformed specs, complementing the
// conformance matrix's bit-identity checks (which pin one spec against
// itself). All scenarios here are deterministic — fixed seeds, fixed
// transforms — so every assertion is reproducible, not statistical.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/spec_io.hpp"

namespace dtn::harness {
namespace {

/// Dense random-waypoint world: enough contact churn that seed and
/// node-count transforms have visible effects within a short run.
ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.name = "metamorphic";
  spec.duration_s = 300.0;
  spec.seed = 11;
  spec.map.kind = "open_field";
  spec.map.params.width = 400.0;
  spec.map.params.height = 400.0;
  spec.world.step_dt = 0.5;
  spec.world.radio_range = 30.0;
  spec.traffic.interval_min = 4.0;
  spec.traffic.interval_max = 8.0;
  spec.traffic.size_bytes = 4096;
  spec.traffic.ttl = 60.0;
  GroupSpec group;
  group.name = "walkers";
  group.model = "random_waypoint";
  group.count = 16;
  group.params.waypoint.speed_min = 2.0;
  group.params.waypoint.speed_max = 10.0;
  spec.groups.push_back(std::move(group));
  spec.protocol.name = "Epidemic";
  return spec;
}

void expect_structural_invariants(const ScenarioResult& r, const std::string& label) {
  const sim::Metrics& m = r.metrics;
  EXPECT_GT(m.created(), 0) << label;
  EXPECT_LE(m.delivered(), m.created()) << label;
  // Every delivery is a completed transfer, so relays bound deliveries.
  EXPECT_LE(m.delivered(), m.relayed()) << label;
  EXPECT_GE(m.delivery_ratio(), 0.0) << label;
  EXPECT_LE(m.delivery_ratio(), 1.0) << label;
  EXPECT_GE(m.goodput(), 0.0) << label;
  EXPECT_LE(m.goodput(), 1.0) << label;
  if (m.delivered() > 0) {
    // full_ttl_window scenarios deliver within the TTL by construction.
    EXPECT_GE(m.latency_mean(), 0.0) << label;
    EXPECT_LE(m.latency_mean(), 60.0) << label;
  }
  EXPECT_GE(r.contact_events, 0) << label;
}

TEST(SpecMetamorphic, SeedChangeAltersTrajectoriesButNotInvariants) {
  const ScenarioSpec spec = base_spec();
  std::vector<ScenarioResult> results;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    ScenarioSpec s = spec;
    s.seed = seed;
    results.push_back(run_scenario(s));
    expect_structural_invariants(results.back(), "seed=" + std::to_string(seed));
  }
  // Different seeds must actually produce different dynamics — otherwise
  // the seed is being dropped somewhere in the spec -> world plumbing.
  EXPECT_NE(results[0].contact_events, results[1].contact_events);
  EXPECT_NE(results[1].contact_events, results[2].contact_events);
}

TEST(SpecMetamorphic, DurationExtensionOnlyGrowsCreated) {
  // With full_ttl_window, traffic stops at duration - ttl, so a longer run
  // strictly extends the generation window; the traffic stream is seeded
  // independently of duration, so the shorter run's messages are a prefix.
  const ScenarioSpec spec = base_spec();
  std::int64_t prev_created = 0;
  for (const double duration : {150.0, 300.0, 600.0}) {
    ScenarioSpec s = spec;
    s.duration_s = duration;
    const ScenarioResult r = run_scenario(s);
    EXPECT_GE(r.metrics.created(), prev_created) << "duration=" << duration;
    EXPECT_GT(r.metrics.created(), 0) << "duration=" << duration;
    prev_created = r.metrics.created();
  }
}

TEST(SpecMetamorphic, NodeCountGrowsDeliveryOpportunities) {
  // Adding nodes adds contact opportunities: per-node seed streams derive
  // from (seed, node id), so the original nodes' trajectories are unchanged
  // and their pairwise contacts remain; new nodes can only add more.
  // Principled exceptions, deliberately NOT exercised here: a trace group
  // is capped by the trace's recorded node count, and changing a BUS
  // group's count reshuffles the route round-robin (node v rides route
  // v % routes), which relocates existing nodes rather than purely adding.
  const ScenarioSpec spec = base_spec();
  std::int64_t prev_contacts = -1;
  for (const int nodes : {8, 16, 32}) {
    ScenarioSpec s = spec;
    s.groups[0].count = nodes;
    const ScenarioResult r = run_scenario(s);
    EXPECT_GT(r.contact_events, prev_contacts) << "nodes=" << nodes;
    prev_contacts = r.contact_events;
  }
}

TEST(SpecMetamorphic, FullTtlWindowNeverCreatesAfterStop) {
  // The full-TTL gate is a pure restriction of the traffic window: with it
  // off and traffic.stop set to the same cutoff manually, runs match.
  ScenarioSpec gated = base_spec();
  ScenarioSpec manual = base_spec();
  manual.full_ttl_window = false;
  manual.traffic.stop = manual.duration_s - manual.traffic.ttl;
  const ScenarioResult a = run_scenario(gated);
  const ScenarioResult b = run_scenario(manual);
  EXPECT_EQ(a.metrics.created(), b.metrics.created());
  EXPECT_EQ(a.metrics.delivered(), b.metrics.delivered());
  EXPECT_EQ(a.metrics.relayed(), b.metrics.relayed());
  EXPECT_EQ(a.contact_events, b.contact_events);
}

TEST(SpecMetamorphic, StationaryRelaysOnlyAddDeliveryOpportunities) {
  // Appending an infrastructure group leaves the walkers' streams untouched
  // (node-id-keyed RNG), so walker-walker contacts persist and relay
  // contacts come on top — the heterogeneous form of node-count
  // monotonicity.
  const ScenarioSpec walkers_only = base_spec();
  ScenarioSpec with_relays = base_spec();
  GroupSpec relays;
  relays.name = "relays";
  relays.model = "stationary";
  relays.count = 9;
  with_relays.groups.push_back(std::move(relays));

  const ScenarioResult without = run_scenario(walkers_only);
  const ScenarioResult with = run_scenario(with_relays);
  EXPECT_GT(with.contact_events, without.contact_events);
}

}  // namespace
}  // namespace dtn::harness
