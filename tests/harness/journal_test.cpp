// Journal framing and recovery (harness/journal.hpp): round-trips,
// longest-valid-prefix replay, corrupt/truncated tails, truncate_file and
// durable_replace — the primitives the crash-safe sweep layer builds on.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/journal.hpp"

namespace dtn::harness {
namespace {

/// Unique-ish scratch path under the build tree's cwd; removed on setup
/// and teardown so reruns are clean.
class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string("journal_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".dtnj";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  void write_raw(const std::string& bytes, bool append = false) {
    std::FILE* f = std::fopen(path_.c_str(), append ? "ab" : "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  std::string path_;
};

TEST_F(JournalTest, WriterRoundTripsRecords) {
  const std::vector<std::string> payloads = {
      "header line", "point 0 ok", "", "binary \x01\x02\xff bytes",
      std::string("embedded\0nul", 12)};
  {
    JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path_, &error)) << error;
    for (const auto& p : payloads) ASSERT_TRUE(writer.append(p));
    EXPECT_FALSE(writer.failed());
  }
  const JournalReadResult replay = read_journal(path_);
  EXPECT_FALSE(replay.missing);
  EXPECT_FALSE(replay.io_error);
  EXPECT_FALSE(replay.tail_dropped());
  ASSERT_EQ(replay.records.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(replay.records[i], payloads[i]) << "record " << i;
  }
}

TEST_F(JournalTest, MissingFileIsMissingNotError) {
  const JournalReadResult replay = read_journal(path_);
  EXPECT_TRUE(replay.missing);
  EXPECT_FALSE(replay.io_error);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.valid_bytes, 0u);
}

TEST_F(JournalTest, AppendReopensAtEnd) {
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.open(path_, nullptr));
    ASSERT_TRUE(writer.append("first"));
  }
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.open(path_, nullptr));
    EXPECT_GT(writer.bytes(), 0u) << "open must report pre-existing length";
    ASSERT_TRUE(writer.append("second"));
  }
  const JournalReadResult replay = read_journal(path_);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0], "first");
  EXPECT_EQ(replay.records[1], "second");
}

TEST_F(JournalTest, TornFinalWriteDropsOnlyTheTail) {
  const std::string full =
      frame_record("alpha") + frame_record("beta") + frame_record("gamma");
  // Cut mid-way through the last record.
  const std::string torn =
      full.substr(0, full.size() - frame_record("gamma").size() / 2);
  write_raw(torn);
  const JournalReadResult replay = read_journal(path_);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0], "alpha");
  EXPECT_EQ(replay.records[1], "beta");
  EXPECT_TRUE(replay.tail_dropped());
  EXPECT_EQ(replay.valid_bytes,
            frame_record("alpha").size() + frame_record("beta").size());
  EXPECT_EQ(replay.valid_bytes + replay.dropped_bytes, torn.size());
}

TEST_F(JournalTest, ChecksumMismatchEndsTheReplay) {
  std::string data = frame_record("alpha") + frame_record("beta");
  // Flip one payload bit inside "beta" (the last byte before its trailing
  // newline).
  data[data.size() - 2] ^= 0x40;
  data += frame_record("gamma");  // intact but unreachable behind the damage
  write_raw(data);
  const JournalReadResult replay = read_journal(path_);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0], "alpha");
  EXPECT_TRUE(replay.tail_dropped());
}

TEST_F(JournalTest, GarbageFileYieldsNoRecords) {
  write_raw("this was never a journal\n");
  const JournalReadResult replay = read_journal(path_);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.valid_bytes, 0u);
  EXPECT_TRUE(replay.tail_dropped());
}

TEST_F(JournalTest, BadFramingVariantsAllStopCleanly) {
  // Each case must yield zero records, not crash or mis-parse.
  const std::string good = frame_record("x");
  const std::vector<std::string> bad = {
      "%DTNJ1 ",                         // magic then EOF
      "%DTNJ1 12",                       // length then EOF
      "%DTNJ1 1 zzzzzzzz\nx\n",          // non-hex crc
      "%DTNJ1 1 ABCDEF01\nx\n",          // uppercase crc (spec says lowercase)
      "%DTNJ1  1 00000000\nx\n",         // double space
      "%DTNJ1 999999999999999999 00000000\n",  // absurd length
      good.substr(0, good.size() - 1),   // missing trailing newline
  };
  for (const auto& variant : bad) {
    write_raw(variant);
    const JournalReadResult replay = read_journal(path_);
    EXPECT_TRUE(replay.records.empty()) << "variant: " << variant;
  }
}

TEST_F(JournalTest, TruncateFileCutsToExactLength) {
  const std::string a = frame_record("alpha");
  write_raw(a + "partial garbage tail");
  ASSERT_TRUE(truncate_file(path_, a.size()));
  const JournalReadResult replay = read_journal(path_);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_FALSE(replay.tail_dropped());
  // Appending after the truncation extends the valid prefix.
  JournalWriter writer;
  ASSERT_TRUE(writer.open(path_, nullptr));
  ASSERT_TRUE(writer.append("beta"));
  writer.close();
  const JournalReadResult again = read_journal(path_);
  ASSERT_EQ(again.records.size(), 2u);
  EXPECT_EQ(again.records[1], "beta");
}

TEST_F(JournalTest, SyncEveryZeroStillFlushes) {
  JournalWriter writer;
  ASSERT_TRUE(writer.open(path_, nullptr));
  writer.set_sync_every(0);
  ASSERT_TRUE(writer.append("no fsync, still flushed"));
  // Read WITHOUT closing the writer: the flush must have pushed the
  // record to the OS.
  const JournalReadResult replay = read_journal(path_);
  ASSERT_EQ(replay.records.size(), 1u);
  writer.close();
}

TEST_F(JournalTest, DurableReplacePublishesAndRemovesTmp) {
  const std::string tmp = path_ + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("final contents", f);
    std::fclose(f);
  }
  std::string error;
  ASSERT_TRUE(durable_replace(tmp, path_, &error)) << error;
  std::FILE* gone = std::fopen(tmp.c_str(), "rb");
  EXPECT_EQ(gone, nullptr) << "tmp must not survive the rename";
  if (gone != nullptr) std::fclose(gone);
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t got = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, got), "final contents");
}

TEST_F(JournalTest, DurableReplaceFailsLoudlyOnMissingTmp) {
  std::string error;
  EXPECT_FALSE(durable_replace(path_ + ".tmp", path_, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace dtn::harness
