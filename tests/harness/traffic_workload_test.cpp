// The spec-driven workload subsystem, end to end through the harness:
//   - the degenerate (no-matrix) path is bit-identical to an explicit
//     whole-network matrix entry for EVERY registered protocol x two seeds
//     (the compatibility contract that let the generator be replaced);
//   - matrix + profile workloads replay bit-identically across sweep
//     thread counts and across ScenarioRunner reuse;
//   - scenario.full_ttl_window CAPS traffic.stop instead of overwriting a
//     user-set stop (regression: it used to clobber it silently);
//   - validate_spec rejects every malformed traffic section loudly;
//   - trace-driven workloads replay a file and reject malformed input.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"
#include "routing/factory.hpp"

namespace dtn::harness {
namespace {

/// One group of 8 waypoint walkers on a small open field: every registered
/// protocol runs it, and it is dense enough to create and deliver traffic
/// in 20 simulated seconds.
ScenarioSpec base_spec() {
  return parse_spec(
      "scenario.name = workload\n"
      "scenario.duration = 20\n"
      "scenario.seed = 7\n"
      "map.kind = open_field\n"
      "map.width = 250\n"
      "map.height = 250\n"
      "group.g0.model = random_waypoint\n"
      "group.g0.count = 8\n"
      "group.g0.speed_min = 2\n"
      "group.g0.speed_max = 8\n"
      "world.radio_range = 60\n"
      "world.step_dt = 0.5\n"
      "protocol.name = Epidemic\n"
      "protocol.copies = 4\n"
      "communities.count = 2\n"
      "traffic.interval_min = 1\n"
      "traffic.interval_max = 3\n"
      "traffic.size_bytes = 2048\n"
      "traffic.ttl = 10\n");
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.metrics.created(), b.metrics.created()) << label;
  EXPECT_EQ(a.metrics.delivered(), b.metrics.delivered()) << label;
  EXPECT_EQ(a.metrics.relayed(), b.metrics.relayed()) << label;
  EXPECT_EQ(a.metrics.dropped(), b.metrics.dropped()) << label;
  EXPECT_EQ(a.metrics.expired(), b.metrics.expired()) << label;
  EXPECT_EQ(a.metrics.control_bytes(), b.metrics.control_bytes()) << label;
  EXPECT_EQ(a.metrics.latency_mean(), b.metrics.latency_mean()) << label;
  EXPECT_EQ(a.contact_events, b.contact_events) << label;
}

std::string validation_error(const ScenarioSpec& spec) {
  try {
    validate_spec(spec);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

/// The richest expressible workload short of a trace: two flows between
/// group ranges with distinct rates, gated by an on-off profile.
ScenarioSpec matrix_onoff_spec() {
  ScenarioSpec spec = base_spec();
  spec.groups[0].count = 5;
  GroupSpec hub;
  hub.name = "hub";
  hub.model = "stationary";
  hub.count = 3;
  hub.params.stationary.margin = 40.0;
  spec.groups.push_back(std::move(hub));
  spec.traffic.profile = sim::TrafficProfile::kOnOff;
  spec.traffic.on_s = 6.0;
  spec.traffic.off_s = 3.0;
  spec.traffic_matrix = {TrafficEntrySpec{"g0", "hub", 1.0, 2.0, 2048, 2.0},
                         TrafficEntrySpec{"g0", "g0", 2.0, 4.0, 1024, 1.0}};
  return spec;
}

TEST(TrafficWorkload, DegenerateMatrixBitIdenticalForEveryProtocolAndSeed) {
  // The compatibility contract: an explicit traffic.g0.g0 entry with the
  // scalar interval/size is THE SAME workload as no matrix at all — same
  // RNG stream (entry index 0), same draws, same metrics — for every
  // registered protocol and more than one seed.
  const auto protocols = routing::known_protocols();
  ASSERT_GE(protocols.size(), 10u);
  for (const auto& protocol : protocols) {
    for (const std::uint64_t seed : {7u, 99u}) {
      ScenarioSpec implicit = base_spec();
      implicit.protocol.name = protocol;
      implicit.seed = seed;
      ScenarioSpec explicit_m = implicit;
      explicit_m.traffic_matrix = {TrafficEntrySpec{"g0", "g0", 1.0, 3.0, 2048, 1.0}};
      const ScenarioResult a = ScenarioRunner().run(implicit);
      const ScenarioResult b = ScenarioRunner().run(explicit_m);
      ASSERT_GT(a.metrics.created(), 0) << protocol;
      expect_identical(a, b, protocol + " seed " + std::to_string(seed));
    }
  }
}

TEST(TrafficWorkload, MatrixProfileBitIdenticalAcrossThreadCounts) {
  SpecSweepOptions options;
  options.base = matrix_onoff_spec();
  options.axes = {SweepAxis{"protocol.name", routing::known_protocols()}};
  options.seeds = 2;
  options.seed_base = 42;
  options.threads = 1;
  const auto serial = run_spec_sweep(options);
  options.threads = 3;
  const auto parallel = run_spec_sweep(options);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    EXPECT_EQ(serial[p].overrides, parallel[p].overrides);
    for (const auto metric : {Metric::kDeliveryRatio, Metric::kLatency,
                              Metric::kGoodput, Metric::kControlMb, Metric::kRelayed}) {
      EXPECT_EQ(metric_value(serial[p].result, metric),
                metric_value(parallel[p].result, metric))
          << serial[p].label();
    }
  }
}

TEST(TrafficWorkload, MatrixProfileBitIdenticalOnReusedRunner) {
  const ScenarioSpec spec = matrix_onoff_spec();
  const ScenarioResult fresh = ScenarioRunner().run(spec);
  EXPECT_GT(fresh.metrics.created(), 0);

  ScenarioRunner reused;
  ScenarioSpec foreign = base_spec();  // different groups, plain traffic
  foreign.protocol.name = "DirectDelivery";
  reused.run(foreign);
  expect_identical(fresh, reused.run(spec), "[reused after foreign]");
  expect_identical(fresh, reused.run(spec), "[reused twice]");
}

TEST(TrafficWorkload, FullTtlWindowCapsInsteadOfOverwritingUserStop) {
  // Regression: the builder used to assign stop = duration - ttl
  // unconditionally, silently DISCARDING a user-set traffic.stop. It must
  // take the minimum of the two.
  ScenarioSpec spec = base_spec();
  spec.duration_s = 400.0;
  spec.traffic.ttl = 100.0;
  spec.traffic.interval_min = 1.0;
  spec.traffic.interval_max = 1.0;
  spec.traffic.stop = 10.0;  // the user asked for a 10 s burst
  const ScenarioResult r = ScenarioRunner().run(spec);
  // One message per second, stop inclusive: exactly 10. The clobbering bug
  // would generate through duration - ttl = 300 s instead.
  EXPECT_EQ(r.metrics.created(), 10);

  // And the cap still engages when the user stop is beyond the window.
  spec.traffic.stop = 1e18;
  const ScenarioResult capped = ScenarioRunner().run(spec);
  EXPECT_EQ(capped.metrics.created(), 300);
}

TEST(TrafficWorkload, ValidateSpecRejectsEveryMalformedTrafficSection) {
  const auto reject = [](void (*mutate)(ScenarioSpec&), const std::string& needle) {
    ScenarioSpec spec = base_spec();
    spec.groups[0].count = 8;
    mutate(spec);
    const std::string what = validation_error(spec);
    ASSERT_FALSE(what.empty()) << "expected rejection mentioning: " << needle;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  };

  reject([](ScenarioSpec& s) { s.traffic.interval_min = 40.0; },
         "interval_min (40) must be <= ");
  reject([](ScenarioSpec& s) { s.traffic.interval_min = -1.0; },
         "interval_min must be >= 0");
  reject([](ScenarioSpec& s) { s.traffic.interval_max = 0.0; }, "interval_max");
  reject([](ScenarioSpec& s) { s.traffic.ttl = 0.0; }, "traffic.ttl");
  reject([](ScenarioSpec& s) { s.traffic.size_bytes = 0; }, "traffic.size_bytes");
  reject(
      [](ScenarioSpec& s) {
        s.traffic.start = 50.0;
        s.traffic.stop = 10.0;
      },
      "traffic.start (50) must be <= traffic.stop (10)");
  reject([](ScenarioSpec& s) { s.traffic.ttl = 20.0; },
         "scenario.full_ttl_window with traffic.ttl (20) >= scenario.duration (20)");
  reject([](ScenarioSpec& s) { s.traffic_matrix = {TrafficEntrySpec{"g0", "ghost"}}; },
         "unknown group 'ghost'");
  reject(
      [](ScenarioSpec& s) {
        s.traffic_matrix = {TrafficEntrySpec{"g0", "g0"}, TrafficEntrySpec{"g0", "g0"}};
      },
      "duplicate traffic matrix entry traffic.g0.g0");
  reject(
      [](ScenarioSpec& s) {
        s.traffic_matrix = {TrafficEntrySpec{"g0", "g0", 5.0, 2.0}};
      },
      "traffic.g0.g0.interval_min (5) must be <= ");
  reject(
      [](ScenarioSpec& s) {
        s.traffic_matrix = {TrafficEntrySpec{"g0", "g0", 1.0, 3.0, 2048, 0.0}};
      },
      "traffic.g0.g0.weight");
  reject([](ScenarioSpec& s) { s.traffic.profile = sim::TrafficProfile::kOnOff; },
         "traffic.on");
  reject(
      [](ScenarioSpec& s) {
        s.traffic.profile = sim::TrafficProfile::kDiurnal;
        s.traffic.period_s = 0.0;
      },
      "traffic.period");
  reject([](ScenarioSpec& s) { s.traffic.profile = sim::TrafficProfile::kTrace; },
         "traffic.file");
  reject(
      [](ScenarioSpec& s) {
        s.traffic.profile = sim::TrafficProfile::kTrace;
        s.traffic_file = "whatever.trace";
        s.traffic_matrix = {TrafficEntrySpec{"g0", "g0"}};
      },
      "cannot be combined");

  // And the parser side of the same surface: bad profile names and
  // misspelled matrix parameter keys are diagnosed, never half-applied.
  ScenarioSpec parsed;
  std::vector<SpecDiagnostic> diagnostics;
  EXPECT_FALSE(try_parse_spec(to_config(base_spec()) + "traffic.profile = sometimes\n",
                              parsed, diagnostics));
  EXPECT_FALSE(try_parse_spec(to_config(base_spec()) + "traffic.g0.g0.weigth = 2\n",
                              parsed, diagnostics));
}

TEST(TrafficWorkload, TraceFileWorkloadReplaysAndValidates) {
  const std::string path = ::testing::TempDir() + "/workload.trace";
  {
    std::ofstream out(path);
    out << "# time src dst [size_bytes [ttl]]\n"
        << "1.0 0 1\n"
        << "2.5 1 2 4096\n"
        << "4.0 2 3 512 5\n";
  }
  ScenarioSpec spec = base_spec();
  spec.traffic.profile = sim::TrafficProfile::kTrace;
  spec.traffic_file = path;
  const ScenarioResult a = ScenarioRunner().run(spec);
  EXPECT_EQ(a.metrics.created(), 3);
  expect_identical(a, ScenarioRunner().run(spec), "[trace replay]");

  spec.traffic_file = path + ".does-not-exist";
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);

  const std::string bad = ::testing::TempDir() + "/workload_bad.trace";
  {
    std::ofstream out(bad);
    out << "1.0 0 99\n";  // node 99 out of range
  }
  spec.traffic_file = bad;
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
  {
    std::ofstream out(bad);
    out << "5.0 0 1\n3.0 1 2\n";  // decreasing timestamps
  }
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

}  // namespace
}  // namespace dtn::harness
