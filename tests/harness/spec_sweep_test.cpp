// Declarative sweep engine: axis cross products over arbitrary spec keys,
// ordering, label/meta propagation, and agreement with the legacy
// protocol × node-count adapter.
#include <gtest/gtest.h>

#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"

namespace dtn::harness {
namespace {

ScenarioSpec tiny_bus_spec() {
  BusScenarioParams p;
  p.duration_s = 1200.0;
  p.traffic.ttl = 600.0;
  p.map.rows = 6;
  p.map.cols = 8;
  p.map.districts = 2;
  p.map.routes_per_district = 2;
  p.node_count = 12;
  return to_spec(p);
}

TEST(SpecSweep, CrossProductOrderingFirstAxisOutermost) {
  SpecSweepOptions opt;
  opt.base = tiny_bus_spec();
  opt.axes = {{"protocol.name", {"DirectDelivery", "Epidemic"}},
              {"scenario.nodes", {"12", "20"}}};
  opt.seeds = 1;
  opt.seed_base = 77;
  const auto results = run_spec_sweep(opt);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].result.protocol, "DirectDelivery");
  EXPECT_EQ(results[0].result.node_count, 12);
  EXPECT_EQ(results[1].result.protocol, "DirectDelivery");
  EXPECT_EQ(results[1].result.node_count, 20);
  EXPECT_EQ(results[2].result.protocol, "Epidemic");
  EXPECT_EQ(results[2].result.node_count, 12);
  EXPECT_EQ(results[0].overrides.size(), 2u);
  EXPECT_EQ(results[0].label(), "protocol.name=DirectDelivery scenario.nodes=12");
}

TEST(SpecSweep, AnyParameterIsSweepable) {
  // The point of the redesign: sweep a world-layer parameter (buffer size)
  // and a mobility parameter (bus speed) with no harness changes.
  SpecSweepOptions opt;
  opt.base = tiny_bus_spec();
  apply_override(opt.base, "protocol.name", "Epidemic");
  opt.axes = {{"world.buffer_bytes", {"65536", "1048576"}},
              {"group.buses.speed_max", {"5", "13.9"}}};
  opt.seeds = 1;
  const auto results = run_spec_sweep(opt);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& point : results) {
    EXPECT_EQ(point.result.delivery_ratio.count(), 1u) << point.label();
    EXPECT_GT(point.result.contacts.mean(), 0.0) << point.label();
  }
  // Same seed, same world except buffers: the tiny store cannot deliver
  // more than the roomy one under flooding.
  EXPECT_LE(results[0].result.delivery_ratio.mean(),
            results[2].result.delivery_ratio.mean() + 1e-12);
}

TEST(SpecSweep, NoAxesMeansOnePoint) {
  SpecSweepOptions opt;
  opt.base = tiny_bus_spec();
  apply_override(opt.base, "protocol.name", "DirectDelivery");
  opt.seeds = 2;
  const auto results = run_spec_sweep(opt);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].overrides.empty());
  EXPECT_EQ(results[0].result.delivery_ratio.count(), 2u);
  EXPECT_EQ(results[0].label(), "");
}

TEST(SpecSweep, BadAxisKeyThrowsSpecError) {
  SpecSweepOptions opt;
  opt.base = tiny_bus_spec();
  opt.axes = {{"protocol.nmae", {"EER"}}};
  EXPECT_THROW(run_spec_sweep(opt), SpecError);
}

TEST(SpecSweep, DuplicateAxisKeysAreRejected) {
  // The later axis's override would win per point while the earlier
  // axis's values label the rows — misattributed results.
  SpecSweepOptions opt;
  opt.base = tiny_bus_spec();
  opt.axes = {{"protocol.name", {"EER", "CR"}}, {"protocol.name", {"Epidemic"}}};
  EXPECT_THROW(run_spec_sweep(opt), SpecError);
}

TEST(SpecSweep, SeedAxisIsRejectedNotSilentlyIgnored) {
  // Per-task seeds overwrite spec.seed, so a scenario.seed axis could
  // never take effect — it must fail loudly.
  SpecSweepOptions opt;
  opt.base = tiny_bus_spec();
  opt.axes = {{"scenario.seed", {"1", "2"}}};
  EXPECT_THROW(run_spec_sweep(opt), SpecError);
}

TEST(SpecSweep, AdapterAgreesWithDirectSpecSweep) {
  // run_sweep(SweepOptions) is documented as the axes
  // {protocol.name, scenario.nodes}; both engines must produce identical
  // aggregates and ordering.
  SweepOptions legacy;
  legacy.protocols = {"DirectDelivery", "Epidemic"};
  legacy.node_counts = {12, 20};
  legacy.seeds = 2;
  legacy.seed_base = 77;
  legacy.base.duration_s = 1200.0;
  legacy.base.traffic.ttl = 600.0;
  legacy.base.map.rows = 6;
  legacy.base.map.cols = 8;
  legacy.base.map.districts = 2;
  legacy.base.map.routes_per_district = 2;
  const auto adapted = run_sweep(legacy);

  SpecSweepOptions direct;
  direct.base = to_spec(legacy.base);
  direct.axes = {{"protocol.name", legacy.protocols}, {"scenario.nodes", {"12", "20"}}};
  direct.seeds = 2;
  direct.seed_base = 77;
  const auto spec_results = run_spec_sweep(direct);

  ASSERT_EQ(adapted.size(), spec_results.size());
  for (std::size_t i = 0; i < adapted.size(); ++i) {
    EXPECT_EQ(adapted[i].protocol, spec_results[i].result.protocol);
    EXPECT_EQ(adapted[i].node_count, spec_results[i].result.node_count);
    EXPECT_EQ(adapted[i].delivery_ratio.mean(),
              spec_results[i].result.delivery_ratio.mean());
    EXPECT_EQ(adapted[i].latency.mean(), spec_results[i].result.latency.mean());
    EXPECT_EQ(adapted[i].contacts.mean(), spec_results[i].result.contacts.mean());
  }
}

TEST(SpecSweep, SweepTableRendersAxesAndMetrics) {
  SpecSweepOptions opt;
  opt.base = tiny_bus_spec();
  opt.axes = {{"protocol.name", {"DirectDelivery", "Epidemic"}}};
  opt.seeds = 1;
  const auto results = run_spec_sweep(opt);
  const std::string rendered = sweep_table(results).to_string();
  EXPECT_NE(rendered.find("protocol.name"), std::string::npos);
  EXPECT_NE(rendered.find("DirectDelivery"), std::string::npos);
  EXPECT_NE(rendered.find("delivery_ratio"), std::string::npos);
  EXPECT_NE(rendered.find("goodput"), std::string::npos);
}

}  // namespace
}  // namespace dtn::harness
