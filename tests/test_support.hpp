// Shared helpers for simulator and routing tests: a recording router that
// exposes the protected Router API, and world builders with scripted
// (trace-driven) movement so contact timing is exact and deterministic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geo/trace.hpp"
#include "mobility/movement_model.hpp"
#include "mobility/trace_playback.hpp"
#include "sim/router.hpp"
#include "sim/world.hpp"

namespace dtn::test {

/// Router that records every callback and exposes send_copy for tests.
class RecordingRouter : public sim::Router {
 public:
  explicit RecordingRouter(int initial_replicas = 1)
      : initial_replicas_(initial_replicas) {}

  [[nodiscard]] std::string name() const override { return "Recording"; }
  [[nodiscard]] int initial_replicas() const override { return initial_replicas_; }

  void on_contact_up(sim::NodeIdx peer) override { contacts_up.push_back(peer); }
  void on_contact_down(sim::NodeIdx peer) override { contacts_down.push_back(peer); }
  void on_message_created(const sim::Message& m) override { created.push_back(m.id); }
  void on_message_received(const sim::StoredMessage& sm, sim::NodeIdx from) override {
    received.push_back({sm.msg.id, from});
  }
  void on_transfer_success(const sim::Message& m, sim::NodeIdx to, int replicas_sent,
                           bool delivered) override {
    successes.push_back({m.id, to, replicas_sent, delivered});
  }
  void on_delivered(const sim::Message& m) override { delivered_ids.push_back(m.id); }

  // Expose the protected API for driving tests.
  using sim::Router::buffer;
  using sim::Router::contacts;
  using sim::Router::peer_has;
  using sim::Router::send_copy;

  struct Received {
    sim::MsgId id;
    sim::NodeIdx from;
  };
  struct Success {
    sim::MsgId id;
    sim::NodeIdx to;
    int replicas;
    bool delivered;
  };

  std::vector<sim::NodeIdx> contacts_up;
  std::vector<sim::NodeIdx> contacts_down;
  std::vector<sim::MsgId> created;
  std::vector<Received> received;
  std::vector<Success> successes;
  std::vector<sim::MsgId> delivered_ids;

 private:
  int initial_replicas_;
};

/// Movement that keeps a node at `pos` forever (alias for readability).
inline mobility::MovementModelPtr pinned(geo::Vec2 pos) {
  return std::make_unique<mobility::Stationary>(pos);
}

/// Movement scripted by (time, position) keyframes with linear motion.
inline mobility::MovementModelPtr scripted(
    std::vector<std::pair<double, geo::Vec2>> keyframes) {
  std::vector<geo::TraceSample> samples;
  samples.reserve(keyframes.size());
  for (const auto& [t, p] : keyframes) {
    samples.push_back(geo::TraceSample{t, 0, p});
  }
  return std::make_unique<mobility::TracePlayback>(std::move(samples));
}

/// Default test world: 10 m range, 2 Mbps, 1 MB buffers, dt 0.1 s.
inline sim::WorldConfig test_world_config(std::uint64_t seed = 1) {
  sim::WorldConfig c;
  c.seed = seed;
  return c;
}

/// A message of `kb` kilobytes from src to dst created at t=`created`.
inline sim::Message make_message(sim::MsgId id, sim::NodeIdx src, sim::NodeIdx dst,
                                 double created = 0.0, double ttl = 1200.0,
                                 std::int64_t kb = 25) {
  sim::Message m;
  m.id = id;
  m.src = src;
  m.dst = dst;
  m.created = created;
  m.ttl = ttl;
  m.size_bytes = kb * 1024;
  return m;
}

}  // namespace dtn::test
