#include "geo/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

namespace dtn::geo {
namespace {

TEST(Trace, ParseBasic) {
  const Trace t = parse_trace("0 0 1.5 2.5\n10 1 3 4\n");
  ASSERT_EQ(t.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(t.samples[0].time, 0.0);
  EXPECT_EQ(t.samples[0].node, 0);
  EXPECT_DOUBLE_EQ(t.samples[0].pos.x, 1.5);
  EXPECT_DOUBLE_EQ(t.samples[1].pos.y, 4.0);
}

TEST(Trace, ParseSkipsCommentsAndBlanks) {
  const Trace t = parse_trace("# header\n\n  \n5 0 1 1\n# trailing\n");
  EXPECT_EQ(t.samples.size(), 1u);
}

TEST(Trace, ParseSortsByTimeThenNode) {
  const Trace t = parse_trace("10 1 0 0\n5 0 0 0\n10 0 0 0\n");
  ASSERT_EQ(t.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(t.samples[0].time, 5.0);
  EXPECT_EQ(t.samples[1].node, 0);
  EXPECT_EQ(t.samples[2].node, 1);
}

TEST(Trace, ParseRejectsMalformed) {
  EXPECT_THROW(parse_trace("not a number\n"), std::runtime_error);
  EXPECT_THROW(parse_trace("1 0 2\n"), std::runtime_error);  // missing y
  EXPECT_THROW(parse_trace("1 -2 0 0\n"), std::runtime_error);  // negative id
}

TEST(Trace, NodeCountAndDuration) {
  const Trace t = parse_trace("0 0 0 0\n50 3 1 1\n100 1 2 2\n");
  EXPECT_EQ(t.node_count(), 4);  // max id 3 -> 4 slots
  EXPECT_DOUBLE_EQ(t.duration(), 100.0);
}

TEST(Trace, EmptyTrace) {
  const Trace t = parse_trace("");
  EXPECT_EQ(t.node_count(), 0);
  EXPECT_DOUBLE_EQ(t.duration(), 0.0);
}

TEST(Trace, WriteReadRoundTrip) {
  Trace t;
  t.samples = {{0.0, 0, {1.0, 2.0}}, {5.5, 1, {-3.25, 4.75}}, {10.0, 0, {0.0, 0.0}}};
  const std::string path = ::testing::TempDir() + "/dtn_trace_test.txt";
  ASSERT_TRUE(write_trace(path, t));
  const Trace back = read_trace(path);
  ASSERT_EQ(back.samples.size(), t.samples.size());
  for (std::size_t i = 0; i < t.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.samples[i].time, t.samples[i].time);
    EXPECT_EQ(back.samples[i].node, t.samples[i].node);
    EXPECT_DOUBLE_EQ(back.samples[i].pos.x, t.samples[i].pos.x);
    EXPECT_DOUBLE_EQ(back.samples[i].pos.y, t.samples[i].pos.y);
  }
  std::remove(path.c_str());
}

TEST(Trace, ReadMissingFileThrows) {
  EXPECT_THROW(read_trace("/nonexistent/dir/trace.txt"), std::runtime_error);
}

}  // namespace
}  // namespace dtn::geo
