#include "geo/map_gen.hpp"

#include <gtest/gtest.h>

namespace dtn::geo {
namespace {

DowntownParams small_params() {
  DowntownParams p;
  p.rows = 6;
  p.cols = 8;
  p.block_m = 100.0;
  p.districts = 3;
  p.routes_per_district = 2;
  p.seed = 42;
  return p;
}

TEST(MapGen, GridHasExpectedIntersections) {
  const DowntownParams p = small_params();
  const MapGraph map = generate_grid_map(p);
  EXPECT_EQ(map.node_count(), static_cast<std::size_t>((p.rows + 1) * (p.cols + 1)));
}

TEST(MapGen, GridIsConnected) {
  const MapGraph map = generate_grid_map(small_params());
  EXPECT_TRUE(map.connected());
}

TEST(MapGen, GridBoundsMatchBlocks) {
  const DowntownParams p = small_params();
  const MapGraph map = generate_grid_map(p);
  const auto [lo, hi] = map.bounds();
  EXPECT_DOUBLE_EQ(lo.x, 0.0);
  EXPECT_DOUBLE_EQ(lo.y, 0.0);
  EXPECT_DOUBLE_EQ(hi.x, p.cols * p.block_m);
  EXPECT_DOUBLE_EQ(hi.y, p.rows * p.block_m);
}

TEST(MapGen, DeterministicForSeed) {
  const DowntownParams p = small_params();
  const BusNetwork a = generate_downtown(p);
  const BusNetwork b = generate_downtown(p);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.routes[i].line.total_length(), b.routes[i].line.total_length());
    EXPECT_EQ(a.routes[i].district, b.routes[i].district);
  }
}

TEST(MapGen, DifferentSeedsDiffer) {
  DowntownParams p = small_params();
  const BusNetwork a = generate_downtown(p);
  p.seed = 43;
  const BusNetwork b = generate_downtown(p);
  bool any_difference = a.routes.size() != b.routes.size();
  for (std::size_t i = 0; !any_difference && i < a.routes.size(); ++i) {
    any_difference = a.routes[i].line.total_length() != b.routes[i].line.total_length();
  }
  EXPECT_TRUE(any_difference);
}

TEST(MapGen, RoutesAreClosedWithPositiveLength) {
  const BusNetwork net = generate_downtown(small_params());
  EXPECT_FALSE(net.routes.empty());
  for (const auto& r : net.routes) {
    EXPECT_TRUE(r.line.closed());
    EXPECT_GT(r.line.total_length(), 0.0);
  }
}

TEST(MapGen, EveryDistrictHasRoutes) {
  const DowntownParams p = small_params();
  const BusNetwork net = generate_downtown(p);
  std::vector<int> per_district(static_cast<std::size_t>(p.districts), 0);
  for (const auto& r : net.routes) {
    ASSERT_GE(r.district, 0);
    ASSERT_LT(r.district, p.districts);
    ++per_district[static_cast<std::size_t>(r.district)];
  }
  for (const int count : per_district) EXPECT_GT(count, 0);
}

TEST(MapGen, RouteVerticesLieOnMapIntersections) {
  const BusNetwork net = generate_downtown(small_params());
  for (const auto& r : net.routes) {
    for (const Vec2 p : r.line.points()) {
      const NodeId nearest = net.map.nearest_node(p);
      EXPECT_LT(p.distance_to(net.map.position(nearest)), 1e-9);
    }
  }
}

TEST(MapGen, DistrictOfPartitionsWorld) {
  const DowntownParams p = small_params();
  const BusNetwork net = generate_downtown(p);
  EXPECT_EQ(net.district_of({1.0, 1.0}), 0);
  EXPECT_EQ(net.district_of({net.world_width - 1.0, 1.0}), p.districts - 1);
  // Out-of-range points clamp.
  EXPECT_EQ(net.district_of({-100.0, 0.0}), 0);
  EXPECT_EQ(net.district_of({net.world_width + 100.0, 0.0}), p.districts - 1);
}

TEST(MapGen, SingleDistrictWorks) {
  DowntownParams p = small_params();
  p.districts = 1;
  const BusNetwork net = generate_downtown(p);
  EXPECT_EQ(net.districts, 1);
  for (const auto& r : net.routes) EXPECT_EQ(r.district, 0);
}

class MapGenSizeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MapGenSizeTest, GeneratesValidNetworks) {
  const auto [districts, routes] = GetParam();
  DowntownParams p = small_params();
  p.districts = districts;
  p.routes_per_district = routes;
  const BusNetwork net = generate_downtown(p);
  EXPECT_TRUE(net.map.connected());
  EXPECT_GE(static_cast<int>(net.routes.size()), districts);  // >= 1 per district
  for (const auto& r : net.routes) {
    EXPECT_GE(r.line.total_length(), p.block_m);  // routes span at least a block
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MapGenSizeTest,
                         ::testing::Values(std::pair{2, 1}, std::pair{3, 3},
                                           std::pair{4, 2}, std::pair{5, 4}));

}  // namespace
}  // namespace dtn::geo
