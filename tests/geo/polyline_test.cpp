#include "geo/polyline.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dtn::geo {
namespace {

Polyline unit_square_closed() {
  return Polyline({{0, 0}, {1, 0}, {1, 1}, {0, 1}}, /*closed=*/true);
}

TEST(Polyline, EmptyAndSinglePoint) {
  const Polyline empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.total_length(), 0.0);
  EXPECT_EQ(empty.point_at(5.0), (Vec2{0.0, 0.0}));

  const Polyline single({{2.0, 3.0}});
  EXPECT_DOUBLE_EQ(single.total_length(), 0.0);
  EXPECT_EQ(single.point_at(10.0), (Vec2{2.0, 3.0}));
}

TEST(Polyline, OpenLength) {
  const Polyline line({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(line.total_length(), 7.0);
  EXPECT_FALSE(line.closed());
}

TEST(Polyline, ClosedLengthIncludesClosingSegment) {
  const Polyline square = unit_square_closed();
  EXPECT_DOUBLE_EQ(square.total_length(), 4.0);
  EXPECT_TRUE(square.closed());
}

TEST(Polyline, PointAtOpenClamps) {
  const Polyline line({{0, 0}, {10, 0}});
  EXPECT_EQ(line.point_at(-5.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(line.point_at(15.0), (Vec2{10.0, 0.0}));
  EXPECT_EQ(line.point_at(4.0), (Vec2{4.0, 0.0}));
}

TEST(Polyline, PointAtClosedWraps) {
  const Polyline square = unit_square_closed();
  const Vec2 at_half = square.point_at(0.5);
  const Vec2 wrapped = square.point_at(4.5);
  EXPECT_NEAR(at_half.x, wrapped.x, 1e-12);
  EXPECT_NEAR(at_half.y, wrapped.y, 1e-12);
  // Negative arc length wraps backwards.
  const Vec2 back = square.point_at(-0.5);
  const Vec2 same = square.point_at(3.5);
  EXPECT_NEAR(back.x, same.x, 1e-12);
  EXPECT_NEAR(back.y, same.y, 1e-12);
}

TEST(Polyline, PointAtClosingSegment) {
  const Polyline square = unit_square_closed();
  // s = 3.5 lies in the middle of the closing edge (0,1) -> (0,0).
  const Vec2 p = square.point_at(3.5);
  EXPECT_NEAR(p.x, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 0.5, 1e-12);
}

TEST(Polyline, LengthAtVertex) {
  const Polyline line({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(line.length_at_vertex(0), 0.0);
  EXPECT_DOUBLE_EQ(line.length_at_vertex(1), 3.0);
  EXPECT_DOUBLE_EQ(line.length_at_vertex(2), 7.0);
}

TEST(Polyline, ProjectOntoSegmentInterior) {
  const Polyline line({{0, 0}, {10, 0}});
  EXPECT_NEAR(line.project(Vec2{4.0, 3.0}), 4.0, 1e-12);
}

TEST(Polyline, ProjectClampsToEndpoints) {
  const Polyline line({{0, 0}, {10, 0}});
  EXPECT_NEAR(line.project(Vec2{-5.0, 1.0}), 0.0, 1e-12);
  EXPECT_NEAR(line.project(Vec2{50.0, 1.0}), 10.0, 1e-12);
}

TEST(Polyline, ProjectPicksNearestSegmentOnClosed) {
  const Polyline square = unit_square_closed();
  // A point just left of the closing edge x=0 between y in (0,1).
  const double s = square.project(Vec2{-0.1, 0.5});
  EXPECT_NEAR(s, 3.5, 1e-9);
}

TEST(Polyline, RoundTripPointAtAndProject) {
  const Polyline square = unit_square_closed();
  for (const double s : {0.25, 1.3, 2.75, 3.9}) {
    const Vec2 p = square.point_at(s);
    EXPECT_NEAR(square.project(p), s, 1e-9) << "arc length " << s;
  }
}

TEST(Polyline, DegenerateRepeatedPoints) {
  const Polyline line({{1, 1}, {1, 1}, {2, 1}});
  EXPECT_DOUBLE_EQ(line.total_length(), 1.0);
  const Vec2 p = line.point_at(0.5);
  EXPECT_NEAR(p.x, 1.5, 1e-12);
}

TEST(Polyline, HintedPointAtIsBitIdenticalToPointAt) {
  const Polyline square = unit_square_closed();
  // Monotone sweep (the bus cursor pattern), many wraps, with exact
  // equality required — the hinted walk must land on upper_bound's segment.
  std::uint32_t hint = 0;
  for (double s = 0.0; s < 40.0; s += 0.037) {
    const Vec2 want = square.point_at(s);
    const Vec2 got = square.point_at_hinted(s, hint);
    ASSERT_EQ(got.x, want.x) << "s=" << s;
    ASSERT_EQ(got.y, want.y) << "s=" << s;
  }
  // Backward jumps invalidate the hint; the fallback must still agree.
  for (const double s : {3.9, 0.1, 2.5, 1.0, 3.999, 0.0}) {
    const Vec2 want = square.point_at(s);
    const Vec2 got = square.point_at_hinted(s, hint);
    ASSERT_EQ(got.x, want.x) << "s=" << s;
    ASSERT_EQ(got.y, want.y) << "s=" << s;
  }
}

TEST(Polyline, HintedPointAtHandlesDegenerateShapes) {
  std::uint32_t hint = 7;  // bogus hint must be tolerated
  const Polyline empty;
  EXPECT_EQ(empty.point_at_hinted(1.0, hint), Vec2{});
  hint = 3;
  const Polyline single({{2, 3}});
  EXPECT_EQ(single.point_at_hinted(5.0, hint), (Vec2{2, 3}));
  hint = 99;  // out-of-range hint on a real line
  const Polyline line({{0, 0}, {10, 0}});
  const Vec2 p = line.point_at_hinted(4.0, hint);
  EXPECT_EQ(p, line.point_at(4.0));
}

}  // namespace
}  // namespace dtn::geo
