#include "geo/map_graph.hpp"

#include <gtest/gtest.h>

namespace dtn::geo {
namespace {

MapGraph square_graph() {
  // 0 -(1)- 1
  // |       |
  // 3 -(1)- 2   plus a diagonal 0-2 of length sqrt(2)
  MapGraph g;
  g.add_node({0, 0});
  g.add_node({1, 0});
  g.add_node({1, 1});
  g.add_node({0, 1});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(0, 2);
  return g;
}

TEST(MapGraph, AddNodesAndEdges) {
  const MapGraph g = square_graph();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_EQ(g.position(2), (Vec2{1, 1}));
}

TEST(MapGraph, DuplicateAndSelfEdgesIgnored) {
  MapGraph g;
  g.add_node({0, 0});
  g.add_node({1, 0});
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
}

TEST(MapGraph, NearestNode) {
  const MapGraph g = square_graph();
  EXPECT_EQ(g.nearest_node({0.1, 0.1}), 0);
  EXPECT_EQ(g.nearest_node({0.9, 0.95}), 2);
}

TEST(MapGraph, ShortestPathPrefersDiagonal) {
  const MapGraph g = square_graph();
  // 0 -> 2 direct diagonal (sqrt(2) ~ 1.41) beats 0-1-2 (2.0).
  const auto path = g.shortest_path(0, 2);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 2}));
}

TEST(MapGraph, ShortestPathMultiHop) {
  MapGraph g;
  g.add_node({0, 0});
  g.add_node({1, 0});
  g.add_node({2, 0});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.shortest_path(0, 2), (std::vector<NodeId>{0, 1, 2}));
}

TEST(MapGraph, ShortestPathToSelf) {
  const MapGraph g = square_graph();
  EXPECT_EQ(g.shortest_path(1, 1), (std::vector<NodeId>{1}));
}

TEST(MapGraph, ShortestPathUnreachable) {
  MapGraph g;
  g.add_node({0, 0});
  g.add_node({10, 0});
  EXPECT_TRUE(g.shortest_path(0, 1).empty());
}

TEST(MapGraph, ShortestPathInvalidIds) {
  const MapGraph g = square_graph();
  EXPECT_TRUE(g.shortest_path(-1, 2).empty());
  EXPECT_TRUE(g.shortest_path(0, 99).empty());
}

TEST(MapGraph, Connectivity) {
  MapGraph g = square_graph();
  EXPECT_TRUE(g.connected());
  g.add_node({50, 50});  // isolated
  EXPECT_FALSE(g.connected());
}

TEST(MapGraph, EmptyGraphIsConnected) {
  const MapGraph g;
  EXPECT_TRUE(g.connected());
}

TEST(MapGraph, WalkToPolyline) {
  const MapGraph g = square_graph();
  const Polyline line = g.walk_to_polyline({0, 1, 2}, /*closed=*/false);
  EXPECT_EQ(line.size(), 3u);
  EXPECT_DOUBLE_EQ(line.total_length(), 2.0);
  const Polyline loop = g.walk_to_polyline({0, 1, 2, 3}, /*closed=*/true);
  EXPECT_DOUBLE_EQ(loop.total_length(), 4.0);
}

TEST(MapGraph, Bounds) {
  const MapGraph g = square_graph();
  const auto [lo, hi] = g.bounds();
  EXPECT_EQ(lo, (Vec2{0, 0}));
  EXPECT_EQ(hi, (Vec2{1, 1}));
}

}  // namespace
}  // namespace dtn::geo
