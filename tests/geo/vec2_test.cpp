#include "geo/vec2.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dtn::geo {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, (Vec2{4.0, -2.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 6.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -2.0}));
}

TEST(Vec2, CompoundAssign) {
  Vec2 v{1.0, 1.0};
  v += Vec2{2.0, 3.0};
  EXPECT_EQ(v, (Vec2{3.0, 4.0}));
  v -= Vec2{1.0, 1.0};
  EXPECT_EQ(v, (Vec2{2.0, 3.0}));
}

TEST(Vec2, NormAndDistance) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{0.0, 0.0}).distance_to(v), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{0.0, 0.0}).distance2_to(v), 25.0);
}

TEST(Vec2, Dot) {
  EXPECT_DOUBLE_EQ((Vec2{1.0, 2.0}).dot(Vec2{3.0, 4.0}), 11.0);
  EXPECT_DOUBLE_EQ((Vec2{1.0, 0.0}).dot(Vec2{0.0, 1.0}), 0.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 n = Vec2{3.0, 4.0}.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  EXPECT_NEAR(n.y, 0.8, 1e-12);
}

TEST(Vec2, NormalizedZeroIsZero) {
  const Vec2 n = Vec2{0.0, 0.0}.normalized();
  EXPECT_EQ(n, (Vec2{0.0, 0.0}));
}

TEST(Vec2, LerpEndpointsAndMidpoint) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 20.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec2{5.0, 10.0}));
}

}  // namespace
}  // namespace dtn::geo
