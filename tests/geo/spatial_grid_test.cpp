#include "geo/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace dtn::geo {
namespace {

TEST(SpatialGrid, QueryFindsInRangeOnly) {
  SpatialGrid grid(10.0);
  grid.insert(0, {0.0, 0.0});
  grid.insert(1, {5.0, 0.0});
  grid.insert(2, {20.0, 0.0});
  auto near = grid.query({0.0, 0.0}, 10.0, 0);
  std::sort(near.begin(), near.end());
  EXPECT_EQ(near, (std::vector<std::int32_t>{1}));
}

TEST(SpatialGrid, QueryExcludesSelf) {
  SpatialGrid grid(10.0);
  grid.insert(7, {1.0, 1.0});
  EXPECT_TRUE(grid.query({1.0, 1.0}, 5.0, 7).empty());
  EXPECT_EQ(grid.query({1.0, 1.0}, 5.0).size(), 1u);
}

TEST(SpatialGrid, ClearKeepsNothing) {
  SpatialGrid grid(10.0);
  grid.insert(0, {0.0, 0.0});
  EXPECT_EQ(grid.size(), 1u);
  grid.clear();
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.query({0.0, 0.0}, 100.0).empty());
}

TEST(SpatialGrid, NegativeCoordinates) {
  SpatialGrid grid(10.0);
  grid.insert(0, {-15.0, -15.0});
  grid.insert(1, {-12.0, -15.0});
  const auto pairs = grid.all_pairs(10.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<std::int32_t, std::int32_t>{0, 1}));
}

TEST(SpatialGrid, AllPairsAcrossCellBoundary) {
  SpatialGrid grid(10.0);
  // Points in adjacent cells but within range.
  grid.insert(0, {9.5, 0.0});
  grid.insert(1, {10.5, 0.0});
  const auto pairs = grid.all_pairs(10.0);
  ASSERT_EQ(pairs.size(), 1u);
}

TEST(SpatialGrid, AllPairsMatchesBruteForceOnRandomPoints) {
  const double radius = 10.0;
  SpatialGrid grid(radius);
  util::Pcg32 rng(99, 1);
  std::vector<Vec2> pts;
  for (std::int32_t i = 0; i < 200; ++i) {
    const Vec2 p{rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)};
    pts.push_back(p);
    grid.insert(i, p);
  }
  std::set<std::pair<std::int32_t, std::int32_t>> expected;
  for (std::int32_t i = 0; i < 200; ++i) {
    for (std::int32_t j = i + 1; j < 200; ++j) {
      if (pts[static_cast<std::size_t>(i)].distance_to(
              pts[static_cast<std::size_t>(j)]) <= radius) {
        expected.insert({i, j});
      }
    }
  }
  auto pairs = grid.all_pairs(radius);
  const std::set<std::pair<std::int32_t, std::int32_t>> actual(pairs.begin(),
                                                               pairs.end());
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(pairs.size(), actual.size()) << "no duplicate pairs";
}

TEST(SpatialGrid, QueryMatchesBruteForce) {
  const double radius = 7.5;
  SpatialGrid grid(radius);
  util::Pcg32 rng(123, 5);
  std::vector<Vec2> pts;
  for (std::int32_t i = 0; i < 150; ++i) {
    const Vec2 p{rng.uniform(0.0, 80.0), rng.uniform(0.0, 80.0)};
    pts.push_back(p);
    grid.insert(i, p);
  }
  const Vec2 probe{40.0, 40.0};
  auto found = grid.query(probe, radius);
  std::sort(found.begin(), found.end());
  std::vector<std::int32_t> expected;
  for (std::int32_t i = 0; i < 150; ++i) {
    if (probe.distance_to(pts[static_cast<std::size_t>(i)]) <= radius) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(found, expected);
}

TEST(SpatialGrid, ZeroOrNegativeCellSizeSanitized) {
  SpatialGrid g1(0.0);
  EXPECT_GT(g1.cell_size(), 0.0);
  SpatialGrid g2(-3.0);
  EXPECT_GT(g2.cell_size(), 0.0);
}

class GridDensityTest : public ::testing::TestWithParam<int> {};

TEST_P(GridDensityTest, PairCountMatchesBruteForce) {
  const int n = GetParam();
  const double radius = 10.0;
  SpatialGrid grid(radius);
  util::Pcg32 rng(7, static_cast<std::uint64_t>(n));
  std::vector<Vec2> pts;
  for (std::int32_t i = 0; i < n; ++i) {
    const Vec2 p{rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)};
    pts.push_back(p);
    grid.insert(i, p);
  }
  std::size_t expected = 0;
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = i + 1; j < n; ++j) {
      if (pts[static_cast<std::size_t>(i)].distance_to(
              pts[static_cast<std::size_t>(j)]) <= radius) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(grid.all_pairs(radius).size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Densities, GridDensityTest, ::testing::Values(2, 10, 50, 120));

}  // namespace
}  // namespace dtn::geo
