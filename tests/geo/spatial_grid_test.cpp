#include "geo/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace dtn::geo {
namespace {

TEST(SpatialGrid, QueryFindsInRangeOnly) {
  SpatialGrid grid(10.0);
  grid.insert(0, {0.0, 0.0});
  grid.insert(1, {5.0, 0.0});
  grid.insert(2, {20.0, 0.0});
  auto near = grid.query({0.0, 0.0}, 10.0, 0);
  std::sort(near.begin(), near.end());
  EXPECT_EQ(near, (std::vector<std::int32_t>{1}));
}

TEST(SpatialGrid, QueryExcludesSelf) {
  SpatialGrid grid(10.0);
  grid.insert(7, {1.0, 1.0});
  EXPECT_TRUE(grid.query({1.0, 1.0}, 5.0, 7).empty());
  EXPECT_EQ(grid.query({1.0, 1.0}, 5.0).size(), 1u);
}

TEST(SpatialGrid, ClearKeepsNothing) {
  SpatialGrid grid(10.0);
  grid.insert(0, {0.0, 0.0});
  EXPECT_EQ(grid.size(), 1u);
  grid.clear();
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.query({0.0, 0.0}, 100.0).empty());
}

TEST(SpatialGrid, NegativeCoordinates) {
  SpatialGrid grid(10.0);
  grid.insert(0, {-15.0, -15.0});
  grid.insert(1, {-12.0, -15.0});
  const auto pairs = grid.all_pairs(10.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<std::int32_t, std::int32_t>{0, 1}));
}

TEST(SpatialGrid, AllPairsAcrossCellBoundary) {
  SpatialGrid grid(10.0);
  // Points in adjacent cells but within range.
  grid.insert(0, {9.5, 0.0});
  grid.insert(1, {10.5, 0.0});
  const auto pairs = grid.all_pairs(10.0);
  ASSERT_EQ(pairs.size(), 1u);
}

TEST(SpatialGrid, AllPairsMatchesBruteForceOnRandomPoints) {
  const double radius = 10.0;
  SpatialGrid grid(radius);
  util::Pcg32 rng(99, 1);
  std::vector<Vec2> pts;
  for (std::int32_t i = 0; i < 200; ++i) {
    const Vec2 p{rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)};
    pts.push_back(p);
    grid.insert(i, p);
  }
  std::set<std::pair<std::int32_t, std::int32_t>> expected;
  for (std::int32_t i = 0; i < 200; ++i) {
    for (std::int32_t j = i + 1; j < 200; ++j) {
      if (pts[static_cast<std::size_t>(i)].distance_to(
              pts[static_cast<std::size_t>(j)]) <= radius) {
        expected.insert({i, j});
      }
    }
  }
  auto pairs = grid.all_pairs(radius);
  const std::set<std::pair<std::int32_t, std::int32_t>> actual(pairs.begin(),
                                                               pairs.end());
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(pairs.size(), actual.size()) << "no duplicate pairs";
}

TEST(SpatialGrid, QueryMatchesBruteForce) {
  const double radius = 7.5;
  SpatialGrid grid(radius);
  util::Pcg32 rng(123, 5);
  std::vector<Vec2> pts;
  for (std::int32_t i = 0; i < 150; ++i) {
    const Vec2 p{rng.uniform(0.0, 80.0), rng.uniform(0.0, 80.0)};
    pts.push_back(p);
    grid.insert(i, p);
  }
  const Vec2 probe{40.0, 40.0};
  auto found = grid.query(probe, radius);
  std::sort(found.begin(), found.end());
  std::vector<std::int32_t> expected;
  for (std::int32_t i = 0; i < 150; ++i) {
    if (probe.distance_to(pts[static_cast<std::size_t>(i)]) <= radius) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(found, expected);
}

TEST(SpatialGrid, OccupiedIndexTracksCellTransitions) {
  SpatialGrid grid(10.0);
  EXPECT_EQ(grid.occupied_cell_count(), 0u);
  grid.insert(0, {1.0, 1.0});
  grid.insert(1, {2.0, 2.0});  // same cell
  grid.insert(2, {25.0, 25.0});
  EXPECT_EQ(grid.occupied_cell_count(), 2u);
  // Moving within a cell changes nothing; crossing empties the old cell
  // (1 -> 0, swap-removed) and occupies the new one (0 -> 1).
  grid.update(2, {26.0, 26.0});
  EXPECT_EQ(grid.occupied_cell_count(), 2u);
  grid.update(2, {55.0, 55.0});
  EXPECT_EQ(grid.occupied_cell_count(), 2u);  // old emptied, new occupied
  grid.update(1, {55.0, 56.0});  // joins node 2's cell; old cell keeps node 0
  EXPECT_EQ(grid.occupied_cell_count(), 2u);
  ASSERT_TRUE(grid.remove(0));
  EXPECT_EQ(grid.occupied_cell_count(), 1u);
  grid.clear();
  EXPECT_EQ(grid.occupied_cell_count(), 0u);
  grid.insert(3, {0.0, 0.0});
  EXPECT_EQ(grid.occupied_cell_count(), 1u);
  grid.reset();
  EXPECT_EQ(grid.occupied_cell_count(), 0u);
}

TEST(SpatialGrid, OccupiedIndexSurvivesCompactionAndChurn) {
  // Enough cell discovery to trigger compact() (created_since_compact > 64)
  // while points churn between cells; the occupied-index sweep must keep
  // producing exactly the brute-force pair set throughout.
  SpatialGrid grid(10.0);
  util::Pcg32 rng(2024, 7);
  constexpr int kPoints = 60;
  std::vector<Vec2> pos(kPoints);
  for (int i = 0; i < kPoints; ++i) {
    pos[i] = {rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)};
    grid.insert(i, pos[i]);
  }
  std::vector<std::pair<std::int32_t, std::int32_t>> pairs;
  for (int round = 0; round < 120; ++round) {
    grid.advance_epoch();
    for (int i = 0; i < kPoints; ++i) {
      // Teleporting walk: constant cell crossings and fresh cell discovery.
      pos[i] = {rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)};
      grid.update(i, pos[i]);
    }
    grid.all_pairs_into(10.0, pairs);
    std::set<std::pair<std::int32_t, std::int32_t>> got(pairs.begin(), pairs.end());
    ASSERT_EQ(got.size(), pairs.size()) << "duplicate pair, round " << round;
    std::set<std::pair<std::int32_t, std::int32_t>> want;
    for (int a = 0; a < kPoints; ++a) {
      for (int b = a + 1; b < kPoints; ++b) {
        if (pos[a].distance_to(pos[b]) <= 10.0) want.emplace(a, b);
      }
    }
    ASSERT_EQ(got, want) << "pair set diverged at round " << round;
    ASSERT_LE(grid.occupied_cell_count(), static_cast<std::size_t>(kPoints));
    ASSERT_LE(grid.occupied_cell_count(), grid.cell_count());
  }
}

TEST(SpatialGrid, ZeroOrNegativeCellSizeSanitized) {
  SpatialGrid g1(0.0);
  EXPECT_GT(g1.cell_size(), 0.0);
  SpatialGrid g2(-3.0);
  EXPECT_GT(g2.cell_size(), 0.0);
}

class GridDensityTest : public ::testing::TestWithParam<int> {};

TEST_P(GridDensityTest, PairCountMatchesBruteForce) {
  const int n = GetParam();
  const double radius = 10.0;
  SpatialGrid grid(radius);
  util::Pcg32 rng(7, static_cast<std::uint64_t>(n));
  std::vector<Vec2> pts;
  for (std::int32_t i = 0; i < n; ++i) {
    const Vec2 p{rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)};
    pts.push_back(p);
    grid.insert(i, p);
  }
  std::size_t expected = 0;
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = i + 1; j < n; ++j) {
      if (pts[static_cast<std::size_t>(i)].distance_to(
              pts[static_cast<std::size_t>(j)]) <= radius) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(grid.all_pairs(radius).size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Densities, GridDensityTest, ::testing::Values(2, 10, 50, 120));

}  // namespace
}  // namespace dtn::geo
