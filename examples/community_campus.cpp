// Community scenario (paper Sec. IV motivating example), driven by the
// shipped scenario file (community_campus.cfg): compares CR against EER
// and Spray-and-Wait on community-structured mobility.
//
//   ./community_campus
//   ./community_campus --set communities.count=6 --set group.walkers.home_prob=0.95
//   ./community_campus --set scenario.nodes=60 --protocols CR,EER
#include <cstdio>

#include "example_common.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace dtn;
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (!examples::require_known_flags(flags, {"set", "protocols", "seeds", "seed-base"}) ||
      !examples::require_int_flags(flags, {"seeds"}, 1) ||
      !examples::require_int_flags(flags, {"seed-base"}, 0)) {
    return 2;
  }

  harness::SpecSweepOptions opt;
  opt.base = examples::load_example_spec(flags, "community_campus.cfg");
  opt.axes.push_back(
      {"protocol.name",
       util::split_csv(flags.get_string("protocols", "CR,EER,SprayAndWait,Epidemic"))});
  opt.seeds = static_cast<int>(flags.get_int("seeds", 1));
  opt.seed_base = static_cast<std::uint64_t>(
      flags.get_int("seed-base", static_cast<std::int64_t>(opt.base.seed)));
  opt.progress = [](const std::string& label) {
    std::fprintf(stderr, "  done: %s\n", label.c_str());
  };

  std::printf("Campus: %d nodes in %d communities, %.0f s\n\n", opt.base.node_count(),
              opt.base.communities.count, opt.base.duration_s);
  const auto results = harness::run_spec_sweep(opt);
  std::printf("%s", harness::sweep_table(results).to_string().c_str());
  std::printf(
      "\nCR routes inter-community first (toward the destination's community),\n"
      "then intra-community with community-scoped MI/MD state — compare its\n"
      "control_MB column against EER's full link-state exchange.\n");
  return 0;
}
