// Community scenario: the paper's Sec. IV motivating example ("students in
// a school are divided into classes") as a runnable experiment. Nodes are
// community-confined random-waypoint walkers (no bus map); the example
// compares CR against EER and Spray-and-Wait and shows the community
// contact asymmetry CR exploits.
//
//   ./community_campus
//   ./community_campus --communities 6 --home-prob 0.95 --nodes 60
#include <cstdio>

#include "harness/scenario.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dtn;
  const util::Flags flags = util::Flags::parse(argc, argv);

  harness::CommunityScenarioParams base;
  base.node_count = static_cast<int>(flags.get_int("nodes", 48));
  base.communities = static_cast<int>(flags.get_int("communities", 4));
  base.home_prob = flags.get_double("home-prob", 0.88);
  base.duration_s = flags.get_double("duration", 4000.0);
  base.world_size_m = flags.get_double("world", 1600.0);
  base.world.radio_range = 25.0;  // pedestrian radios, denser contacts
  base.protocol.copies = static_cast<int>(flags.get_int("lambda", 8));
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  std::printf("Campus: %d nodes in %d communities, home-prob %.2f, %.0f s\n\n",
              base.node_count, base.communities, base.home_prob, base.duration_s);

  util::TablePrinter table({"protocol", "delivery_ratio", "latency_s", "goodput",
                            "relayed", "control_MB"});
  for (const std::string protocol : {"CR", "EER", "SprayAndWait", "Epidemic"}) {
    harness::CommunityScenarioParams p = base;
    p.protocol.name = protocol;
    const harness::ScenarioResult r = harness::run_community_scenario(p);
    table.new_row()
        .add_cell(protocol)
        .add_cell(r.metrics.delivery_ratio(), 4)
        .add_cell(r.metrics.latency_mean(), 1)
        .add_cell(r.metrics.goodput(), 4)
        .add_cell(static_cast<double>(r.metrics.relayed()), 0)
        .add_cell(static_cast<double>(r.metrics.control_bytes()) / 1e6, 2);
    std::fprintf(stderr, "  done: %s\n", protocol.c_str());
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nCR routes inter-community first (toward the destination's community),\n"
      "then intra-community with community-scoped MI/MD state — compare its\n"
      "control_MB column against EER's full link-state exchange.\n");
  return 0;
}
