// Trace tooling: the bridge between this simulator and real mobility
// datasets (CRAWDAD-style).
//
//   ./trace_tools record buses.trace          # dump a bus scenario's trajectories
//   ./trace_tools replay buses.trace          # re-simulate from the trace file
//   ./trace_tools info buses.trace            # summarize a trace
//
// `record` writes `time node x y` lines (1 Hz samples); `replay` builds a
// ScenarioSpec with a trace map source (map.kind = trace) and one `trace`
// group — the exact composition a scenario FILE would use for an external
// dataset after conversion to this format:
//
//   map.kind = trace
//   map.file = buses.trace
//   group.replay.model = trace
//   group.replay.count = <trace nodes>
#include <cstdio>
#include <cstring>
#include <memory>

#include "example_common.hpp"
#include "geo/map_gen.hpp"
#include "geo/map_registry.hpp"
#include "geo/trace.hpp"
#include "harness/scenario.hpp"
#include "mobility/bus_movement.hpp"
#include "util/flags.hpp"

namespace {

using namespace dtn;

int cmd_record(const std::string& path, int nodes, double duration,
               std::uint64_t seed) {
  geo::DowntownParams map;
  map.seed = seed;
  const geo::BusNetwork net = geo::generate_downtown(map);
  std::vector<std::unique_ptr<mobility::BusMovement>> models;
  for (int v = 0; v < nodes; ++v) {
    auto route = std::make_shared<const geo::Polyline>(
        net.routes[static_cast<std::size_t>(v) % net.routes.size()].line);
    auto m = std::make_unique<mobility::BusMovement>(route, mobility::BusParams{});
    m->init(util::derive_stream(seed, static_cast<std::uint64_t>(v),
                                util::StreamPurpose::kMovement),
            0.0);
    models.push_back(std::move(m));
  }
  geo::Trace trace;
  for (double t = 0.0; t <= duration; t += 1.0) {
    for (int v = 0; v < nodes; ++v) {
      trace.samples.push_back(
          {t, v, models[static_cast<std::size_t>(v)]->position()});
      models[static_cast<std::size_t>(v)]->step(t, 1.0);
    }
  }
  if (!geo::write_trace(path, trace)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu samples for %d nodes over %.0f s to %s\n",
              trace.samples.size(), nodes, duration, path.c_str());
  return 0;
}

int cmd_replay(const std::string& path, const std::string& protocol) {
  // Peek at the trace for its node count / duration via the trace map
  // source itself — the registry caches per path, so the scenario run
  // below reuses the load instead of touching the disk again.
  geo::MapParams map_params;
  map_params.trace_file = path;
  const geo::BuiltMap peek = geo::find_map_kind("trace")->build(map_params, 0);
  const geo::Trace& trace = *peek.trace;
  harness::ScenarioSpec spec;
  spec.name = "trace_replay";
  spec.duration_s = trace.duration();
  spec.map.kind = "trace";
  spec.map.params.trace_file = path;
  harness::GroupSpec group;
  group.name = "replay";
  group.model = "trace";
  group.count = trace.node_count();
  spec.groups.push_back(group);
  spec.protocol.name = protocol;
  spec.communities.count = 4;  // round-robin classes so CR works out of the box

  const harness::ScenarioResult r = harness::run_scenario(spec);
  std::printf("replayed %s: %d nodes, %.0f s, protocol %s\n", path.c_str(),
              spec.node_count(), spec.duration_s, protocol.c_str());
  std::printf("delivery ratio %.3f | latency %.1f s | goodput %.4f | %lld contacts\n",
              r.metrics.delivery_ratio(), r.metrics.latency_mean(), r.metrics.goodput(),
              static_cast<long long>(r.contact_events));
  return 0;
}

int cmd_info(const std::string& path) {
  const geo::Trace trace = geo::read_trace(path);
  std::printf("%s: %zu samples, %d nodes, duration %.1f s\n", path.c_str(),
              trace.samples.size(), trace.node_count(), trace.duration());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (!dtn::examples::require_known_flags(flags,
                                          {"nodes", "duration", "protocol", "seed"}) ||
      !dtn::examples::require_int_flags(flags, {"nodes"}, 1) ||
      !dtn::examples::require_int_flags(flags, {"seed"}, 0)) {
    return 2;
  }
  const auto& args = flags.positional();
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: trace_tools record|replay|info <file> "
                 "[--nodes N] [--duration S] [--protocol P] [--seed S]\n");
    return 2;
  }
  const std::string& cmd = args[0];
  const std::string& path = args[1];
  try {
    if (cmd == "record") {
      return cmd_record(path, static_cast<int>(flags.get_int("nodes", 40)),
                        flags.get_double("duration", 2000.0),
                        static_cast<std::uint64_t>(flags.get_int("seed", 1)));
    }
    if (cmd == "replay") {
      return cmd_replay(path, flags.get_string("protocol", "EER"));
    }
    if (cmd == "info") return cmd_info(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
