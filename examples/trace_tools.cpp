// Trace tooling: the bridge between this simulator and real mobility
// datasets (CRAWDAD-style).
//
//   ./trace_tools record buses.trace          # dump a bus scenario's trajectories
//   ./trace_tools replay buses.trace          # re-simulate from the trace file
//   ./trace_tools info buses.trace            # summarize a trace
//
// `record` writes `time node x y` lines (1 Hz samples); `replay` attaches a
// TracePlayback model per node and routes with EER — the exact code path an
// external dataset would use after conversion to this format.
#include <cstdio>
#include <cstring>
#include <memory>

#include "geo/map_gen.hpp"
#include "geo/trace.hpp"
#include "mobility/bus_movement.hpp"
#include "mobility/trace_playback.hpp"
#include "routing/factory.hpp"
#include "sim/world.hpp"
#include "util/flags.hpp"

namespace {

using namespace dtn;

int cmd_record(const std::string& path, int nodes, double duration,
               std::uint64_t seed) {
  geo::DowntownParams map;
  map.seed = seed;
  const geo::BusNetwork net = geo::generate_downtown(map);
  std::vector<std::unique_ptr<mobility::BusMovement>> models;
  for (int v = 0; v < nodes; ++v) {
    auto route = std::make_shared<const geo::Polyline>(
        net.routes[static_cast<std::size_t>(v) % net.routes.size()].line);
    auto m = std::make_unique<mobility::BusMovement>(route, mobility::BusParams{});
    m->init(util::derive_stream(seed, static_cast<std::uint64_t>(v),
                                util::StreamPurpose::kMovement),
            0.0);
    models.push_back(std::move(m));
  }
  geo::Trace trace;
  for (double t = 0.0; t <= duration; t += 1.0) {
    for (int v = 0; v < nodes; ++v) {
      trace.samples.push_back(
          {t, v, models[static_cast<std::size_t>(v)]->position()});
      models[static_cast<std::size_t>(v)]->step(t, 1.0);
    }
  }
  if (!geo::write_trace(path, trace)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu samples for %d nodes over %.0f s to %s\n",
              trace.samples.size(), nodes, duration, path.c_str());
  return 0;
}

int cmd_replay(const std::string& path, const std::string& protocol) {
  const geo::Trace trace = geo::read_trace(path);
  auto models = mobility::TracePlayback::from_trace(trace);
  if (models.empty()) {
    std::fprintf(stderr, "error: empty trace\n");
    return 1;
  }
  const int nodes = static_cast<int>(models.size());
  std::vector<int> cid(models.size());
  for (int v = 0; v < nodes; ++v) cid[static_cast<std::size_t>(v)] = v % 4;
  routing::ProtocolConfig proto;
  proto.name = protocol;
  proto.communities = std::make_shared<const core::CommunityTable>(cid);

  sim::WorldConfig config;
  sim::World world(config);
  for (auto& m : models) {
    world.add_node(std::move(m), routing::create_router(proto));
  }
  const double duration = trace.duration();
  sim::TrafficParams traffic;
  traffic.stop = duration - traffic.ttl;
  world.set_traffic(traffic);
  world.run(duration);
  const sim::Metrics& m = world.metrics();
  std::printf("replayed %s: %d nodes, %.0f s, protocol %s\n", path.c_str(), nodes,
              duration, protocol.c_str());
  std::printf("delivery ratio %.3f | latency %.1f s | goodput %.4f | %lld contacts\n",
              m.delivery_ratio(), m.latency_mean(), m.goodput(),
              static_cast<long long>(world.contact_events()));
  return 0;
}

int cmd_info(const std::string& path) {
  const geo::Trace trace = geo::read_trace(path);
  std::printf("%s: %zu samples, %d nodes, duration %.1f s\n", path.c_str(),
              trace.samples.size(), trace.node_count(), trace.duration());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const auto& args = flags.positional();
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: trace_tools record|replay|info <file> "
                 "[--nodes N] [--duration S] [--protocol P] [--seed S]\n");
    return 2;
  }
  const std::string& cmd = args[0];
  const std::string& path = args[1];
  try {
    if (cmd == "record") {
      return cmd_record(path, static_cast<int>(flags.get_int("nodes", 40)),
                        flags.get_double("duration", 2000.0),
                        static_cast<std::uint64_t>(flags.get_int("seed", 1)));
    }
    if (cmd == "replay") {
      return cmd_replay(path, flags.get_string("protocol", "EER"));
    }
    if (cmd == "info") return cmd_info(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
