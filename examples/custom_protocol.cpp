// Extending the library: writing a custom routing protocol against the
// public Router API, and racing it against the built-ins.
//
// The example implements "FreshnessRouter", a deliberately simple strategy:
// replicate a message to an encounter only if that encounter has met the
// destination more recently than we have (a one-utility cousin of
// Spray-and-Focus's focus phase, but replication-based). It shows the three
// things a protocol implementor touches:
//   1. state updates in on_contact_up,
//   2. the forwarding decision via send_copy(...),
//   3. optional custom buffer-eviction policy.
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "harness/scenario.hpp"
#include "mobility/bus_movement.hpp"
#include "sim/world.hpp"
#include "util/table.hpp"

namespace {

using namespace dtn;

class FreshnessRouter final : public sim::Router {
 public:
  [[nodiscard]] std::string name() const override { return "Freshness"; }

  void on_contact_up(sim::NodeIdx peer) override {
    ensure_size();
    last_met_[static_cast<std::size_t>(peer)] = now();
    auto* peer_router = dynamic_cast<FreshnessRouter*>(&world().router_of(peer));
    const double t = now();
    for (const auto& sm : buffer()) {
      if (sm.msg.expired_at(t)) continue;
      if (sm.msg.dst == peer) {  // direct delivery first, as always
        send_copy(peer, sm.msg.id, 1, 0);
        continue;
      }
      if (peer_router == nullptr || peer_has(peer, sm.msg.id)) continue;
      peer_router->ensure_size();
      if (peer_router->last_met(sm.msg.dst) > last_met(sm.msg.dst)) {
        send_copy(peer, sm.msg.id, /*r_recv=*/1, /*r_deduct=*/0);  // replicate
      }
    }
  }

  /// Custom eviction: drop the message whose destination we saw longest ago.
  [[nodiscard]] sim::MsgId choose_drop_victim(const sim::Buffer& buffer) const override {
    sim::MsgId victim = sim::Buffer::kInvalidMsg;
    double stalest = std::numeric_limits<double>::infinity();
    for (const auto& sm : buffer) {
      const double seen = last_met(sm.msg.dst);
      if (seen < stalest) {
        stalest = seen;
        victim = sm.msg.id;
      }
    }
    return victim;
  }

 private:
  void ensure_size() {
    if (last_met_.size() < static_cast<std::size_t>(world().node_count())) {
      last_met_.resize(static_cast<std::size_t>(world().node_count()),
                       -std::numeric_limits<double>::infinity());
    }
  }
  [[nodiscard]] double last_met(sim::NodeIdx d) const {
    if (d < 0 || static_cast<std::size_t>(d) >= last_met_.size()) {
      return -std::numeric_limits<double>::infinity();
    }
    return last_met_[static_cast<std::size_t>(d)];
  }

  std::vector<double> last_met_;
};

/// Runs the bus scenario with a caller-supplied router factory — the same
/// worldbuilding run_bus_scenario does, shown here in the open so custom
/// protocols (which the string factory doesn't know) plug in.
sim::Metrics run_with(const std::function<std::unique_ptr<sim::Router>()>& make_router,
                      int nodes, double duration, std::uint64_t seed) {
  geo::DowntownParams map;
  map.seed = seed;
  const geo::BusNetwork net = geo::generate_downtown(map);
  std::vector<std::shared_ptr<const geo::Polyline>> routes;
  for (const auto& r : net.routes) {
    routes.push_back(std::make_shared<const geo::Polyline>(r.line));
  }
  sim::WorldConfig config;
  config.seed = seed;
  sim::World world(config);
  for (int v = 0; v < nodes; ++v) {
    world.add_node(std::make_unique<mobility::BusMovement>(
                       routes[static_cast<std::size_t>(v) % routes.size()],
                       mobility::BusParams{}),
                   make_router());
  }
  sim::TrafficParams traffic;
  traffic.stop = duration - traffic.ttl;
  world.set_traffic(traffic);
  world.run(duration);
  return world.metrics();
}

}  // namespace

int main() {
  const int nodes = 60;
  const double duration = 3000.0;
  util::TablePrinter table({"router", "delivery_ratio", "latency_s", "goodput"});

  const sim::Metrics custom = run_with(
      [] { return std::make_unique<FreshnessRouter>(); }, nodes, duration, 9);
  table.new_row()
      .add_cell(std::string("Freshness (custom)"))
      .add_cell(custom.delivery_ratio(), 4)
      .add_cell(custom.latency_mean(), 1)
      .add_cell(custom.goodput(), 4);

  for (const std::string name : {"EER", "SprayAndWait", "Epidemic"}) {
    harness::BusScenarioParams p;
    p.node_count = nodes;
    p.duration_s = duration;
    p.seed = 9;
    p.protocol.name = name;
    const auto r = harness::run_bus_scenario(p);
    table.new_row()
        .add_cell(name)
        .add_cell(r.metrics.delivery_ratio(), 4)
        .add_cell(r.metrics.latency_mean(), 1)
        .add_cell(r.metrics.goodput(), 4);
  }
  std::printf("Custom protocol vs built-ins (%d buses, %.0f s):\n\n%s", nodes,
              duration, table.to_string().c_str());
  return 0;
}
