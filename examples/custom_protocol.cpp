// Extending the library: writing a custom routing protocol against the
// public Router API, REGISTERING it by name, and racing it against the
// built-ins through the same declarative scenario path everything else
// uses (routing::register_protocol + harness::run_spec_sweep). Once
// registered, the name also works in scenario files and
// `dtnsim --set protocol.name=...` — no harness changes.
//
// The example implements "FreshnessRouter", a deliberately simple strategy:
// replicate a message to an encounter only if that encounter has met the
// destination more recently than we have (a one-utility cousin of
// Spray-and-Focus's focus phase, but replication-based). It shows the three
// things a protocol implementor touches:
//   1. state updates in on_contact_up,
//   2. the forwarding decision via send_copy(...),
//   3. optional custom buffer-eviction policy.
#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "sim/world.hpp"
#include "util/table.hpp"

namespace {

using namespace dtn;

class FreshnessRouter final : public sim::Router {
 public:
  [[nodiscard]] std::string name() const override { return "Freshness"; }

  void on_contact_up(sim::NodeIdx peer) override {
    ensure_size();
    last_met_[static_cast<std::size_t>(peer)] = now();
    auto* peer_router = dynamic_cast<FreshnessRouter*>(&world().router_of(peer));
    const double t = now();
    for (const auto& sm : buffer()) {
      if (sm.msg.expired_at(t)) continue;
      if (sm.msg.dst == peer) {  // direct delivery first, as always
        send_copy(peer, sm.msg.id, 1, 0);
        continue;
      }
      if (peer_router == nullptr || peer_has(peer, sm.msg.id)) continue;
      peer_router->ensure_size();
      if (peer_router->last_met(sm.msg.dst) > last_met(sm.msg.dst)) {
        send_copy(peer, sm.msg.id, /*r_recv=*/1, /*r_deduct=*/0);  // replicate
      }
    }
  }

  /// Custom eviction: drop the message whose destination we saw longest ago.
  [[nodiscard]] sim::MsgId choose_drop_victim(const sim::Buffer& buffer) const override {
    sim::MsgId victim = sim::Buffer::kInvalidMsg;
    double stalest = std::numeric_limits<double>::infinity();
    for (const auto& sm : buffer) {
      const double seen = last_met(sm.msg.dst);
      if (seen < stalest) {
        stalest = seen;
        victim = sm.msg.id;
      }
    }
    return victim;
  }

 private:
  void ensure_size() {
    if (last_met_.size() < static_cast<std::size_t>(world().node_count())) {
      last_met_.resize(static_cast<std::size_t>(world().node_count()),
                       -std::numeric_limits<double>::infinity());
    }
  }
  [[nodiscard]] double last_met(sim::NodeIdx d) const {
    if (d < 0 || static_cast<std::size_t>(d) >= last_met_.size()) {
      return -std::numeric_limits<double>::infinity();
    }
    return last_met_[static_cast<std::size_t>(d)];
  }

  std::vector<double> last_met_;
};

}  // namespace

int main() {
  // One registry call makes the custom router a first-class protocol name.
  routing::register_protocol("Freshness", [](const routing::ProtocolConfig&) {
    return std::make_unique<FreshnessRouter>();
  });

  const int nodes = 60;
  const double duration = 3000.0;
  harness::BusScenarioParams base;
  base.node_count = nodes;
  base.duration_s = duration;

  harness::SpecSweepOptions opt;
  opt.base = harness::to_spec(base);
  opt.axes.push_back({"protocol.name", {"Freshness", "EER", "SprayAndWait", "Epidemic"}});
  opt.seeds = 1;
  opt.seed_base = 9;
  const auto results = harness::run_spec_sweep(opt);

  util::TablePrinter table({"router", "delivery_ratio", "latency_s", "goodput"});
  for (const auto& point : results) {
    const std::string& name = point.result.protocol;
    table.new_row()
        .add_cell(name == "Freshness" ? name + " (custom)" : name)
        .add_cell(point.result.delivery_ratio.mean(), 4)
        .add_cell(point.result.latency.mean(), 1)
        .add_cell(point.result.goodput.mean(), 4);
  }
  std::printf("Custom protocol vs built-ins (%d buses, %.0f s):\n\n%s", nodes,
              duration, table.to_string().c_str());
  return 0;
}
