// The paper's evaluation scenario as a runnable application, driven by the
// shipped scenario file (helsinki_buses.cfg) — the main() only chooses the
// protocol lineup and forwards overrides.
//
//   ./helsinki_buses                                    # compare the full lineup
//   ./helsinki_buses --set scenario.nodes=120 --seeds 3
//   ./helsinki_buses --protocols EER,CR --set scenario.duration=10000
//   ./helsinki_buses my_variant.cfg                     # any scenario file
#include <cstdio>

#include "example_common.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace dtn;
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (!examples::require_known_flags(flags, {"set", "protocols", "seeds", "seed-base"}) ||
      !examples::require_int_flags(flags, {"seeds"}, 1) ||
      !examples::require_int_flags(flags, {"seed-base"}, 0)) {
    return 2;
  }

  harness::SpecSweepOptions opt;
  opt.base = examples::load_example_spec(flags, "helsinki_buses.cfg");
  opt.axes.push_back({"protocol.name",
                      util::split_csv(flags.get_string(
                          "protocols", "EER,CR,EBR,MaxProp,SprayAndWait,SprayAndFocus"))});
  opt.seeds = static_cast<int>(flags.get_int("seeds", 2));
  opt.seed_base = static_cast<std::uint64_t>(
      flags.get_int("seed-base", static_cast<std::int64_t>(opt.base.seed)));
  opt.progress = [](const std::string& label) {
    std::fprintf(stderr, "  done: %s\n", label.c_str());
  };

  std::printf("Bus-map scenario: %d nodes, %.0f s, lambda=%d, alpha=%.2f, %d seed(s)\n",
              opt.base.node_count(), opt.base.duration_s, opt.base.protocol.copies,
              opt.base.protocol.alpha, opt.seeds);
  const auto results = harness::run_spec_sweep(opt);

  std::printf("\n%s", harness::sweep_table(results).to_string().c_str());
  std::printf(
      "\nExpected shape (paper Fig. 2): MaxProp leads delivery ratio with the worst\n"
      "goodput; EBR leads goodput with the lowest delivery ratio; EER and CR sit\n"
      "between with the best overall trade-off, CR with less control traffic.\n");
  return 0;
}
