// The paper's evaluation scenario as a runnable application: a synthetic
// downtown bus network (the stand-in for the ONE simulator's Helsinki map,
// see DESIGN.md) with every protocol of Figure 2 on the command line.
//
//   ./helsinki_buses                         # compare the full lineup
//   ./helsinki_buses --nodes 120 --seeds 3
//   ./helsinki_buses --protocols EER,CR --duration 10000
#include <cstdio>
#include <sstream>

#include "harness/sweep.hpp"
#include "util/flags.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtn;
  const util::Flags flags = util::Flags::parse(argc, argv);

  harness::SweepOptions opt;
  opt.protocols = split_csv(flags.get_string(
      "protocols", "EER,CR,EBR,MaxProp,SprayAndWait,SprayAndFocus"));
  opt.node_counts = {static_cast<int>(flags.get_int("nodes", 80))};
  opt.seeds = static_cast<int>(flags.get_int("seeds", 2));
  opt.base.duration_s = flags.get_double("duration", 4000.0);
  opt.base.protocol.copies = static_cast<int>(flags.get_int("lambda", 10));
  opt.base.protocol.alpha = flags.get_double("alpha", 0.28);
  opt.progress = [](const std::string& label) {
    std::fprintf(stderr, "  done: %s\n", label.c_str());
  };

  std::printf("Bus-map scenario: %d nodes, %.0f s, lambda=%d, alpha=%.2f, %d seed(s)\n",
              opt.node_counts[0], opt.base.duration_s, opt.base.protocol.copies,
              opt.base.protocol.alpha, opt.seeds);
  const auto results = harness::run_sweep(opt);

  util::TablePrinter table({"protocol", "delivery_ratio", "latency_s", "goodput",
                            "relayed", "control_MB"});
  for (const auto& p : results) {
    table.new_row()
        .add_cell(p.protocol)
        .add_cell(p.delivery_ratio.mean(), 4)
        .add_cell(p.latency.mean(), 1)
        .add_cell(p.goodput.mean(), 4)
        .add_cell(p.relayed.mean(), 0)
        .add_cell(p.control_mb.mean(), 2);
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\nExpected shape (paper Fig. 2): MaxProp leads delivery ratio with the worst\n"
      "goodput; EBR leads goodput with the lowest delivery ratio; EER and CR sit\n"
      "between with the best overall trade-off, CR with less control traffic.\n");
  return 0;
}
