// Shared glue for the example binaries: locate the shipped .cfg next to
// the sources (overridable with a positional path) and apply `--set
// key=value` command-line overrides — the same override vocabulary as
// `dtnsim run --set` and sweep axes.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>

#include "harness/spec_io.hpp"
#include "util/flags.hpp"
#include "util/value_parse.hpp"

#ifndef DTN_EXAMPLES_DIR
#define DTN_EXAMPLES_DIR "examples"
#endif

namespace dtn::examples {

/// Path of the example's scenario file: first positional argument if
/// given, else the shipped config.
inline std::string cfg_path(const util::Flags& flags, const char* name) {
  if (!flags.positional().empty()) return flags.positional()[0];
  return std::string(DTN_EXAMPLES_DIR) + "/" + name;
}

/// load_spec + `--set key=value` overrides in command-line order.
inline harness::ScenarioSpec load_example_spec(const util::Flags& flags,
                                               const char* name) {
  return harness::load_spec_with_overrides(cfg_path(flags, name),
                                           flags.get_list("set"));
}

/// Strict flag policy (same as dtnsim): the pre-spec examples took
/// --nodes/--duration/... style flags, so silently ignoring them would run
/// the wrong experiment for old invocations. Prints the offenders and how
/// to express them now; returns false if any flag is unknown.
inline bool require_known_flags(const util::Flags& flags,
                                std::initializer_list<const char*> allowed) {
  const auto offenders = flags.unknown_flags(allowed);
  for (const auto& flag : offenders) {
    std::fprintf(stderr,
                 "unknown flag '--%s' — scenario parameters are overridden with "
                 "--set key=value (e.g. --set scenario.nodes=120)\n",
                 flag.c_str());
  }
  return offenders.empty();
}

/// Strict companion for the numeric flags an example reads via get_int:
/// any of `names` that is present must parse as a whole integer no
/// smaller than `min_value` — a typo like `--seeds abc` (or `--seeds 0`,
/// which would print a plausible-looking all-zero table) must not
/// silently run the wrong experiment.
inline bool require_int_flags(const util::Flags& flags,
                              std::initializer_list<const char*> names,
                              std::int64_t min_value) {
  bool ok = true;
  for (const char* name : names) {
    if (!flags.has(name)) continue;
    std::int64_t value = min_value;
    if (!flags.parse_int(name, value) || value < min_value) {
      std::fprintf(stderr, "bad value '%s' for --%s (integer >= %lld expected)\n",
                   flags.get_string(name, "").c_str(), name,
                   static_cast<long long>(min_value));
      ok = false;
    }
  }
  return ok;
}

}  // namespace dtn::examples
