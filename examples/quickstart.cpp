// Quickstart: the smallest complete use of the library — load a scenario
// file, run it, read the three metrics the paper evaluates. The whole
// experiment definition lives in quickstart.cfg; every parameter is
// overridable from the command line with the same keys.
//
//   ./quickstart
//   ./quickstart --set protocol.name=CR --set scenario.nodes=50 \
//                --set scenario.duration=3000 --set protocol.copies=8
#include <cstdio>

#include "example_common.hpp"
#include "harness/scenario.hpp"

int main(int argc, char** argv) {
  using namespace dtn;
  const util::Flags flags = util::Flags::parse(argc, argv);
  if (!examples::require_known_flags(flags, {"set"})) return 2;

  // 1. A declarative scenario: map, groups, radio, traffic, protocol.
  const harness::ScenarioSpec spec =
      examples::load_example_spec(flags, "quickstart.cfg");

  // 2. Run it. (Campaigns reuse a harness::ScenarioRunner across runs.)
  const harness::ScenarioResult r = harness::run_scenario(spec);

  // 3. Report.
  const sim::Metrics& m = r.metrics;
  std::printf("protocol       : %s (lambda=%d)\n", spec.protocol.name.c_str(),
              spec.protocol.copies);
  std::printf("nodes          : %d, duration %.0f s, %lld contacts\n",
              spec.node_count(), spec.duration_s,
              static_cast<long long>(r.contact_events));
  std::printf("messages       : %lld created, %lld delivered\n",
              static_cast<long long>(m.created()), static_cast<long long>(m.delivered()));
  std::printf("delivery ratio : %.3f\n", m.delivery_ratio());
  std::printf("latency        : %.1f s (mean over delivered)\n", m.latency_mean());
  std::printf("goodput        : %.4f (delivered / relayed)\n", m.goodput());
  std::printf("overhead       : %.2f MB control traffic\n",
              static_cast<double>(m.control_bytes()) / 1e6);
  return 0;
}
