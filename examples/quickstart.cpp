// Quickstart: the smallest complete use of the library.
//
// Builds a 30-node random-waypoint world, routes messages with EER, and
// prints the three metrics the paper evaluates. Try:
//
//   ./quickstart
//   ./quickstart --protocol CR --nodes 50 --duration 3000 --lambda 8
#include <cstdio>
#include <memory>

#include "core/community.hpp"
#include "mobility/random_waypoint.hpp"
#include "routing/factory.hpp"
#include "sim/world.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace dtn;
  const util::Flags flags = util::Flags::parse(argc, argv);
  const int nodes = static_cast<int>(flags.get_int("nodes", 30));
  const double duration = flags.get_double("duration", 2000.0);
  const std::string protocol = flags.get_string("protocol", "EER");
  const int lambda = static_cast<int>(flags.get_int("lambda", 8));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  // 1. A world: 0.1 s steps, 10 m radio range, 2 Mbps links, 1 MB buffers.
  sim::WorldConfig config;
  config.seed = seed;
  config.radio_range = 30.0;  // generous range so a small world stays busy
  sim::World world(config);

  // 2. A protocol. CR needs a community table; give every protocol one so
  //    --protocol CR works out of the box (4 round-robin communities).
  std::vector<int> cid(static_cast<std::size_t>(nodes));
  for (int v = 0; v < nodes; ++v) cid[static_cast<std::size_t>(v)] = v % 4;
  routing::ProtocolConfig proto;
  proto.name = protocol;
  proto.copies = lambda;
  proto.communities = std::make_shared<const core::CommunityTable>(cid);

  // 3. Nodes: random-waypoint walkers in a 500 m square.
  mobility::RandomWaypointParams walk;
  walk.world_max = {500.0, 500.0};
  walk.speed_min = 0.8;
  walk.speed_max = 2.0;
  for (int v = 0; v < nodes; ++v) {
    world.add_node(std::make_unique<mobility::RandomWaypoint>(walk),
                   routing::create_router(proto));
  }

  // 4. Traffic: one 25 KB message every 25-35 s, TTL 20 min.
  sim::TrafficParams traffic;
  traffic.stop = duration - traffic.ttl;
  world.set_traffic(traffic);

  // 5. Run and report.
  world.run(duration);
  const sim::Metrics& m = world.metrics();
  std::printf("protocol       : %s (lambda=%d)\n", protocol.c_str(), lambda);
  std::printf("nodes          : %d, duration %.0f s, %lld contacts\n", nodes,
              duration, static_cast<long long>(world.contact_events()));
  std::printf("messages       : %lld created, %lld delivered\n",
              static_cast<long long>(m.created()), static_cast<long long>(m.delivered()));
  std::printf("delivery ratio : %.3f\n", m.delivery_ratio());
  std::printf("latency        : %.1f s (mean over delivered)\n", m.latency_mean());
  std::printf("goodput        : %.4f (delivered / relayed)\n", m.goodput());
  std::printf("overhead       : %.2f MB control traffic\n",
              static_cast<double>(m.control_bytes()) / 1e6);
  return 0;
}
