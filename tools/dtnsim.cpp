// dtnsim — the scenario-file driver: every experiment the library can
// express, runnable from a ONE-style config file with no C++ involved.
//
//   dtnsim run scenario.cfg [--set key=value]... [--seeds N]
//   dtnsim sweep scenario.cfg --axis protocol.name=EER,CR
//                             --axis scenario.nodes=40,80 [--seeds N] [--threads T]
//                             [--out results.json] [--resume] [--journal J]
//                             [--retries N] [--point-timeout S] [--sync-every N]
//   dtnsim print scenario.cfg [--set key=value]...   # resolved canonical config
//   dtnsim check scenario.cfg                        # parse + validate, report diagnostics
//   dtnsim list                                      # registered protocols/models/maps
//
// `--set` applies single-key overrides after the file loads (repeatable,
// applied in order); `--axis key=v1,v2,...` adds one sweep dimension per
// flag (cross product, first axis outermost); `--out` writes the sweep's
// aggregated results as machine-readable JSON (stable "dtnsim-sweep/1"
// schema, see harness/sweep.hpp). Scenario-file grammar and the key
// vocabulary live in harness/spec_io.hpp and README.md.
//
// Crash safety: a sweep with `--out` (or an explicit `--journal`) streams
// every completed point into an append-only checksummed journal
// (`<out>.journal`), so a killed campaign keeps everything it finished;
// `--resume` replays the journal and recomputes only the missing points —
// final aggregates are bit-identical to an uninterrupted run (pinned by
// the dtnsim_crash_resume ctest). Worker failures never kill a campaign:
// a throwing or timed-out point is retried up to `--retries` times, then
// recorded failed-with-reason and summarized loudly at the end (exit 1;
// the journal is kept so `--resume` retries exactly the failed points).
// `--fault action@trigger` is the deterministic crash-injection hook the
// recovery tests drive (e.g. kill@point=2, kill@bytes=800,
// hang@point=0:ms=2000, throw@point=1:fires=3) — test-only, not for ops.
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "harness/journal.hpp"
#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/value_parse.hpp"

namespace {

using namespace dtn;

int usage() {
  std::fprintf(stderr,
               "usage: dtnsim <command> [args]\n"
               "  run   <scenario.cfg> [--set k=v]... [--seeds N] [--seed-base B]\n"
               "                       [--threads T] [--quiet]\n"
               "  sweep <scenario.cfg> [--axis k=v1,v2,..]... [--set k=v]...\n"
               "                       [--seeds N] [--seed-base B] [--threads T] [--quiet]\n"
               "                       [--out results.json] [--journal J] [--resume]\n"
               "                       [--retries N] [--point-timeout S] [--sync-every N]\n"
               "  print <scenario.cfg> [--set k=v]...\n"
               "  check <scenario.cfg>\n"
               "  list\n");
  return 2;
}

/// Strict numeric flag read: util::Flags falls back silently on garbage,
/// which is the wrong policy for an experiment driver — `--seeds abc`
/// must fail, not run one seed, and an out-of-range value must not be
/// narrowed into a different experiment. Returns false after printing a
/// diagnostic.
bool get_int_flag(const util::Flags& flags, const std::string& name,
                  std::int64_t fallback, std::int64_t lo, std::int64_t hi,
                  std::int64_t& out) {
  out = fallback;
  if (!flags.has(name)) return true;  // defaults are not range-checked
  if (!flags.parse_int(name, out)) {
    std::fprintf(stderr, "dtnsim: bad value '%s' for --%s (integer expected)\n",
                 flags.get_string(name, "").c_str(), name.c_str());
    return false;
  }
  if (out < lo || out > hi) {
    const std::string raw = flags.get_string(name, "");
    std::fprintf(stderr, "dtnsim: --%s %s out of range [%lld, %lld]\n", name.c_str(),
                 raw.c_str(), static_cast<long long>(lo), static_cast<long long>(hi));
    return false;
  }
  return true;
}

/// Strict double flag read (same policy as get_int_flag).
bool get_double_flag(const util::Flags& flags, const std::string& name,
                     double fallback, double lo, double hi, double& out) {
  out = fallback;
  if (!flags.has(name)) return true;
  const std::string raw = flags.get_string(name, "");
  if (!util::parse_value(raw, out)) {
    std::fprintf(stderr, "dtnsim: bad value '%s' for --%s (number expected)\n",
                 raw.c_str(), name.c_str());
    return false;
  }
  if (out < lo || out > hi) {
    std::fprintf(stderr, "dtnsim: --%s %s out of range [%g, %g]\n", name.c_str(),
                 raw.c_str(), lo, hi);
    return false;
  }
  return true;
}

/// Parses the test-only `--fault action@trigger[:k=v...]` spec into a
/// SweepFaultPlan: actions throw|hang|kill; triggers point=N or (kill
/// only) bytes=M; modifiers ms=M (hang stall) and fires=N (activation
/// cap). Returns false after a diagnostic on anything malformed.
bool parse_fault_spec(const std::string& text, harness::SweepFaultPlan& plan) {
  const auto fail = [&text] {
    std::fprintf(stderr,
                 "dtnsim: bad --fault '%s' (expected action@trigger, e.g. "
                 "kill@point=2, kill@bytes=800, hang@point=0:ms=2000, "
                 "throw@point=1:fires=3)\n",
                 text.c_str());
    return false;
  };
  const std::size_t at = text.find('@');
  if (at == std::string::npos) return fail();
  const std::string action = text.substr(0, at);
  if (action == "throw") {
    plan.action = harness::SweepFaultPlan::Action::kThrow;
  } else if (action == "hang") {
    plan.action = harness::SweepFaultPlan::Action::kHang;
  } else if (action == "kill") {
    plan.action = harness::SweepFaultPlan::Action::kKill;
  } else {
    return fail();
  }
  bool has_trigger = false;
  std::string rest = text.substr(at + 1);
  while (!rest.empty()) {
    const std::size_t colon = rest.find(':');
    const std::string part = rest.substr(0, colon);
    rest = colon == std::string::npos ? "" : rest.substr(colon + 1);
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) return fail();
    const std::string key = part.substr(0, eq);
    std::int64_t value = 0;
    if (!util::parse_value(part.substr(eq + 1), value) || value < 0) return fail();
    if (key == "point") {
      plan.point = static_cast<std::size_t>(value);
      has_trigger = true;
    } else if (key == "bytes" && plan.action == harness::SweepFaultPlan::Action::kKill) {
      plan.journal_bytes = static_cast<std::uint64_t>(value);
      has_trigger = true;
    } else if (key == "ms") {
      plan.hang_ms = static_cast<int>(value);
    } else if (key == "fires") {
      plan.fires = static_cast<int>(value);
    } else {
      return fail();
    }
  }
  return has_trigger ? true : fail();
}

/// Strict flag policy: a misspelled flag must not silently run the
/// experiment with default parameters. Returns false (after printing the
/// offenders) when any flag is outside `allowed`.
bool check_flags(const util::Flags& flags, std::initializer_list<const char*> allowed) {
  const auto offenders = flags.unknown_flags(allowed);
  for (const auto& name : offenders) {
    std::fprintf(stderr, "dtnsim: unknown flag '--%s'\n", name.c_str());
  }
  return offenders.empty();
}

void print_point(const harness::PointResult& point) {
  util::TablePrinter table({"metric", "mean", "stddev", "seeds"});
  for (const auto metric :
       {harness::Metric::kDeliveryRatio, harness::Metric::kLatency,
        harness::Metric::kGoodput, harness::Metric::kControlMb, harness::Metric::kRelayed}) {
    table.new_row()
        .add_cell(harness::metric_name(metric))
        .add_cell(harness::metric_value(point, metric),
                  metric == harness::Metric::kLatency ? 1 : 4)
        .add_cell(metric == harness::Metric::kDeliveryRatio
                      ? point.delivery_ratio.stddev()
                  : metric == harness::Metric::kLatency   ? point.latency.stddev()
                  : metric == harness::Metric::kGoodput   ? point.goodput.stddev()
                  : metric == harness::Metric::kControlMb ? point.control_mb.stddev()
                                                          : point.relayed.stddev(),
                  4)
        .add_cell(static_cast<long long>(point.delivery_ratio.count()));
  }
  std::printf("%s", table.to_string().c_str());
}

int cmd_run(const std::string& path, const util::Flags& flags) {
  if (!check_flags(flags, {"set", "seeds", "seed-base", "threads", "quiet"})) {
    return usage();
  }
  harness::SpecSweepOptions options;
  options.base = harness::load_spec_with_overrides(path, flags.get_list("set"));
  std::int64_t seeds = 0;
  std::int64_t seed_base = 0;
  std::int64_t threads = 0;
  if (!get_int_flag(flags, "seeds", 1, 1, INT32_MAX, seeds) ||
      !get_int_flag(flags, "seed-base", static_cast<std::int64_t>(options.base.seed),
                    0, INT64_MAX, seed_base) ||
      !get_int_flag(flags, "threads", 0, 0, 4096, threads)) {
    return 2;
  }
  options.seeds = static_cast<int>(seeds);
  options.seed_base = static_cast<std::uint64_t>(seed_base);
  options.threads = static_cast<std::size_t>(threads);
  if (!flags.get_bool("quiet", false)) {
    options.progress = [](const std::string& label) {
      std::fprintf(stderr, "  done: %s\n", label.c_str());
    };
  }
  std::printf("scenario '%s': %d nodes, %.0f s, protocol %s, %d seed(s)\n",
              options.base.name.c_str(), options.base.node_count(),
              options.base.duration_s, options.base.protocol.name.c_str(),
              options.seeds);
  const auto results = harness::run_spec_sweep(options);
  if (results.empty() || results.front().result.delivery_ratio.count() == 0) {
    std::fprintf(stderr, "no runs executed (seeds = %d)\n", options.seeds);
    return 1;
  }
  print_point(results.front().result);
  return 0;
}

int cmd_sweep(const std::string& path, const util::Flags& flags) {
  if (!check_flags(flags, {"set", "axis", "seeds", "seed-base", "threads", "quiet",
                           "out", "journal", "resume", "retries", "point-timeout",
                           "sync-every", "fault"})) {
    return usage();
  }
  harness::SpecSweepOptions options;
  options.base = harness::load_spec_with_overrides(path, flags.get_list("set"));
  for (const auto& axis_arg : flags.get_list("axis")) {
    const auto [key, csv] = harness::split_assignment(axis_arg);
    harness::SweepAxis axis;
    axis.key = key;
    axis.values = util::split_csv(csv);
    if (axis.values.empty()) {
      std::fprintf(stderr, "axis '%s' has no values\n", key.c_str());
      return 2;
    }
    options.axes.push_back(std::move(axis));
  }
  std::int64_t seeds = 0;
  std::int64_t seed_base = 0;
  std::int64_t threads = 0;
  std::int64_t retries = 0;
  std::int64_t sync_every = 0;
  double point_timeout = 0.0;
  // seed-base default is the file's scenario.seed, same as `dtnsim run`,
  // so a one-point sweep and a plain run of the same cfg agree.
  if (!get_int_flag(flags, "seeds", 2, 1, INT32_MAX, seeds) ||
      !get_int_flag(flags, "seed-base", static_cast<std::int64_t>(options.base.seed),
                    0, INT64_MAX, seed_base) ||
      !get_int_flag(flags, "threads", 0, 0, 4096, threads) ||
      !get_int_flag(flags, "retries", 0, 0, 1000, retries) ||
      !get_int_flag(flags, "sync-every", 1, 0, INT32_MAX, sync_every) ||
      !get_double_flag(flags, "point-timeout", 0.0, 0.0, 1e9, point_timeout)) {
    return 2;
  }
  options.seeds = static_cast<int>(seeds);
  options.seed_base = static_cast<std::uint64_t>(seed_base);
  options.threads = static_cast<std::size_t>(threads);
  options.retries = static_cast<int>(retries);
  options.sync_every = static_cast<int>(sync_every);
  options.point_timeout_s = point_timeout;
  // The CLI always isolates worker failures: one bad point out of ten
  // thousand must cost that point, not the campaign. (Structural errors —
  // bad axis keys, invalid specs — still fail fast at grid expansion.)
  options.isolate_failures = true;
  options.resume = flags.get_bool("resume", false);
  options.note = [](const std::string& message) {
    std::fprintf(stderr, "dtnsim: %s\n", message.c_str());
  };
  harness::SweepFaultPlan fault_plan;
  if (flags.has("fault")) {
    if (!parse_fault_spec(flags.get_string("fault", ""), fault_plan)) return 2;
    options.fault_plan = &fault_plan;
  }
  if (!flags.get_bool("quiet", false)) {
    options.progress = [](const std::string& label) {
      std::fprintf(stderr, "  done: %s\n", label.c_str());
    };
  }
  // Journal: explicit --journal, else ride alongside --out. Every
  // completed point streams into it (checksummed, fsync'd per
  // --sync-every), so a killed campaign resumes with --resume instead of
  // starting over.
  const std::string out_path = flags.get_string("out", "");
  options.journal_path = flags.get_string("journal", "");
  if (options.journal_path.empty() && !out_path.empty()) {
    options.journal_path = out_path + ".journal";
  }
  if (options.resume && options.journal_path.empty()) {
    std::fprintf(stderr, "dtnsim: --resume needs --out or --journal to locate "
                         "the campaign journal\n");
    return 2;
  }
  // Open --out (via a sibling temp file) before the campaign runs: an
  // unwritable path must fail in seconds, not after hours of simulation
  // with the JSON discarded. The temp + rename keeps a pre-existing
  // results file intact until the new one is complete — a typo'd axis key
  // (which throws inside run_spec_sweep) or a short write (disk full)
  // must not wipe the previous campaign's results.
  const std::string tmp_path = out_path + ".tmp";
  std::FILE* out_file = nullptr;
  if (!out_path.empty()) {
    out_file = std::fopen(tmp_path.c_str(), "w");
    if (out_file == nullptr) {
      std::fprintf(stderr, "dtnsim: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
  }
  std::size_t grid = 1;
  for (const auto& axis : options.axes) grid *= axis.values.size();
  std::printf("sweep '%s': %zu point(s) x %d seed(s)\n", options.base.name.c_str(),
              grid, options.seeds);
  std::vector<harness::SpecPointResult> results;
  try {
    results = harness::run_spec_sweep(options);
  } catch (...) {
    if (out_file != nullptr) {
      std::fclose(out_file);
      std::remove(tmp_path.c_str());
    }
    throw;
  }
  std::size_t resumed_points = 0;
  std::size_t failed_points = 0;
  for (const auto& point : results) {
    if (point.exec.resumed) ++resumed_points;
    if (!point.exec.ok()) ++failed_points;
  }
  if (options.resume) {
    std::printf("resumed %zu completed point(s) from the journal; recomputed %zu\n",
                resumed_points, results.size() - resumed_points);
  }
  std::printf("\n%s", harness::sweep_table(results).to_string().c_str());
  if (out_file != nullptr) {
    const std::string json = harness::sweep_results_json(options, results);
    const bool wrote = std::fputs(json.c_str(), out_file) != EOF;
    const bool closed = std::fclose(out_file) == 0;
    std::string publish_error;
    // durable_replace fsyncs the data AND the directory around the rename:
    // a results file must never be lost to the page cache after the
    // campaign that produced it survived crashes on purpose.
    if (!wrote || !closed ||
        !harness::durable_replace(tmp_path, out_path, &publish_error)) {
      std::fprintf(stderr, "dtnsim: error writing '%s'%s%s\n", out_path.c_str(),
                   publish_error.empty() ? "" : ": ", publish_error.c_str());
      std::remove(tmp_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  // Loud end-of-campaign failure summary (the journal keeps the failed
  // records, so `--resume` retries exactly these points).
  if (failed_points != 0) {
    std::fprintf(stderr, "dtnsim: %zu point(s) FAILED:\n", failed_points);
    for (const auto& point : results) {
      if (point.exec.ok()) continue;
      const std::string label = point.overrides.empty() ? "(single point)"
                                                        : point.label();
      std::fprintf(stderr, "  %s: %s (after %d attempt(s))\n", label.c_str(),
                   point.exec.error.c_str(), point.exec.tries);
    }
    if (!options.journal_path.empty()) {
      std::fprintf(stderr, "dtnsim: journal kept at '%s'; rerun with --resume "
                           "to retry the failed points\n",
                   options.journal_path.c_str());
    }
    return 1;
  }
  // Fully successful campaign: the results file supersedes the journal.
  if (!options.journal_path.empty()) std::remove(options.journal_path.c_str());
  return 0;
}

int cmd_print(const std::string& path, const util::Flags& flags) {
  if (!check_flags(flags, {"set"})) return usage();
  const harness::ScenarioSpec spec =
      harness::load_spec_with_overrides(path, flags.get_list("set"));
  std::printf("%s", harness::to_config(spec).c_str());
  return 0;
}

int cmd_check(const std::string& path) {
  harness::ScenarioSpec spec;
  try {
    spec = harness::load_spec(path);
  } catch (const harness::SpecError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::fprintf(stderr, "%zu problem(s) in %s\n", e.diagnostics().size(), path.c_str());
    return 1;
  }
  try {
    harness::validate_spec(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: invalid scenario: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("%s: OK (%d nodes in %zu group(s), protocol %s, %.0f s)\n", path.c_str(),
              spec.node_count(), spec.groups.size(), spec.protocol.name.c_str(),
              spec.duration_s);
  return 0;
}

void print_names(const char* title, const std::vector<std::string>& names) {
  std::printf("%s:", title);
  for (const auto& n : names) std::printf(" %s", n.c_str());
  std::printf("\n");
}

int cmd_list() {
  print_names("protocols", routing::known_protocols());
  print_names("mobility models", mobility::mobility_model_names());
  print_names("map kinds", geo::map_kind_names());
  print_names("community sources", harness::community_source_names());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const auto& args = flags.positional();
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  // Every command takes at most one scenario file; extra positionals would
  // be silently skipped (e.g. `dtnsim check a.cfg b.cfg` "passing" b.cfg
  // unread), so reject them like unknown flags.
  const std::size_t max_args = cmd == "list" ? 1 : 2;
  if (args.size() > max_args) {
    std::fprintf(stderr, "dtnsim: unexpected argument '%s'\n",
                 args[max_args].c_str());
    return usage();
  }
  try {
    if (cmd == "list") {
      return check_flags(flags, {}) ? cmd_list() : usage();
    }
    if (args.size() < 2) return usage();
    const std::string& path = args[1];
    if (cmd == "run") return cmd_run(path, flags);
    if (cmd == "sweep") return cmd_sweep(path, flags);
    if (cmd == "print") return cmd_print(path, flags);
    if (cmd == "check") {
      return check_flags(flags, {}) ? cmd_check(path) : usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dtnsim: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "dtnsim: unknown command '%s'\n", cmd.c_str());
  return usage();
}
