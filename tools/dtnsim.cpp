// dtnsim — the scenario-file driver: every experiment the library can
// express, runnable from a ONE-style config file with no C++ involved.
//
//   dtnsim run scenario.cfg [--set key=value]... [--seeds N]
//   dtnsim sweep scenario.cfg --axis protocol.name=EER,CR
//                             --axis scenario.nodes=40,80 [--seeds N] [--threads T]
//                             [--out results.json] [--resume] [--journal J]
//                             [--retries N] [--point-timeout S] [--sync-every N]
//                             [--shard i/N | --workers N [--worker-retries R]
//                                                        [--worker-timeout S]]
//   dtnsim journal <file>                            # inspect a campaign journal
//   dtnsim print scenario.cfg [--set key=value]...   # resolved canonical config
//   dtnsim check scenario.cfg                        # parse + validate, report diagnostics
//   dtnsim list                                      # registered protocols/models/maps
//
// `--set` applies single-key overrides after the file loads (repeatable,
// applied in order); `--axis key=v1,v2,...` adds one sweep dimension per
// flag (cross product, first axis outermost); `--out` writes the sweep's
// aggregated results as machine-readable JSON (stable "dtnsim-sweep/1"
// schema, see harness/sweep.hpp). Scenario-file grammar and the key
// vocabulary live in harness/spec_io.hpp and README.md.
//
// Crash safety: a sweep with `--out` (or an explicit `--journal`) streams
// every completed point into an append-only checksummed journal
// (`<out>.journal`), so a killed campaign keeps everything it finished;
// `--resume` replays the journal and recomputes only the missing points —
// final aggregates are bit-identical to an uninterrupted run (pinned by
// the dtnsim_crash_resume ctest). Worker failures never kill a campaign:
// a throwing or timed-out point is retried up to `--retries` times, then
// recorded failed-with-reason and summarized loudly at the end (exit 1;
// the journal is kept so `--resume` retries exactly the failed points).
// `--fault action@trigger` is the deterministic crash-injection hook the
// recovery tests drive (e.g. kill@point=2, kill@bytes=800,
// hang@point=0:ms=2000, throw@point=1:fires=3) — test-only, not for ops.
//
// Multi-process fabric: `--workers N` shards the point cross-product
// across N child `dtnsim sweep --shard i/N` processes (one journal per
// shard under `<journal>.shards/`), supervises them with a journal-growth
// liveness timeout and exponential-backoff restarts (`--worker-retries`,
// each restart resuming its own shard journal), then merges the shard
// journals into final aggregates bit-identical to a single-process run.
// A shard that exhausts its retries degrades the campaign instead of
// killing it: the merge reports its points failed-with-reason, exit is 1,
// and the journals are kept so `--resume` retries exactly the gap.
// `--shard i/N` also works standalone for manual/remote sharding, and
// `dtnsim journal <file>` diagnoses any campaign journal offline.
//
// Multi-host fabric: `dtnsim serve --port P` is a resident worker daemon
// (src/net/, harness/remote.hpp) — it accepts one campaign at a time over
// a checksummed TCP framing, runs the assigned shard through the same
// journaled run_spec_sweep path (journal in a per-campaign scratch dir,
// resumed on reassignment), streams journal-growth heartbeats, and ships
// the journal bytes back. The driver side is `sweep --hosts
// host:port[,...]`: remote shards are dealt round-robin to hosts and
// supervised with the same liveness/backoff policy as local workers
// (heartbeat stall => reassign to another live host, dead host =>
// exponential-backoff reconnect, retries exhausted => degrade to exit 1
// with received journals kept). Received journals land under
// `<journal>.shards/` and flow through the same merge — aggregates are
// bit-identical to a single-process run. `--hosts` composes with local
// `--workers` (local shards fork, remote shards stream). No auth, no TLS:
// bind daemons to loopback or trusted networks only (see README).
//
// Exit codes are pinned (the supervision loop depends on them): 0 = clean
// campaign, 1 = completed with failed points (or a runtime error), 2 =
// usage/config error. `serve` exits 2 on usage/config errors and 1 when
// the listener fails at runtime; it never exits 0 (it runs until killed).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <cerrno>
#include <cstring>
#include <sys/stat.h>
#include <sys/types.h>
#endif

#include "harness/journal.hpp"
#include "harness/remote.hpp"
#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "util/checksum.hpp"
#include "util/flags.hpp"
#include "util/subprocess.hpp"
#include "util/table.hpp"
#include "util/value_parse.hpp"

namespace {

using namespace dtn;

int usage() {
  std::fprintf(stderr,
               "usage: dtnsim <command> [args]\n"
               "  run   <scenario.cfg> [--set k=v]... [--seeds N] [--seed-base B]\n"
               "                       [--threads T] [--quiet]\n"
               "  sweep <scenario.cfg> [--axis k=v1,v2,..]... [--set k=v]...\n"
               "                       [--seeds N] [--seed-base B] [--threads T] [--quiet]\n"
               "                       [--out results.json] [--journal J] [--resume]\n"
               "                       [--retries N] [--point-timeout S] [--sync-every N]\n"
               "                       [--shard i/N | --workers N and/or --hosts h:p[,h:p..]\n"
               "                         [--worker-retries R] [--worker-timeout S]]\n"
               "  serve --port P       [--bind ADDR] [--scratch DIR] [--threads T]\n"
               "                       # resident worker daemon for sweep --hosts\n"
               "                       # (no auth: loopback/trusted networks only)\n"
               "  journal <file>       # inspect a campaign journal (fingerprint,\n"
               "                       # record census, torn-tail diagnosis)\n"
               "  print <scenario.cfg> [--set k=v]...\n"
               "  check <scenario.cfg>\n"
               "  list\n");
  return 2;
}

/// Strict numeric flag read: util::Flags falls back silently on garbage,
/// which is the wrong policy for an experiment driver — `--seeds abc`
/// must fail, not run one seed, and an out-of-range value must not be
/// narrowed into a different experiment. Returns false after printing a
/// diagnostic.
bool get_int_flag(const util::Flags& flags, const std::string& name,
                  std::int64_t fallback, std::int64_t lo, std::int64_t hi,
                  std::int64_t& out) {
  out = fallback;
  if (!flags.has(name)) return true;  // defaults are not range-checked
  if (!flags.parse_int(name, out)) {
    std::fprintf(stderr, "dtnsim: bad value '%s' for --%s (integer expected)\n",
                 flags.get_string(name, "").c_str(), name.c_str());
    return false;
  }
  if (out < lo || out > hi) {
    const std::string raw = flags.get_string(name, "");
    std::fprintf(stderr, "dtnsim: --%s %s out of range [%lld, %lld]\n", name.c_str(),
                 raw.c_str(), static_cast<long long>(lo), static_cast<long long>(hi));
    return false;
  }
  return true;
}

/// Strict double flag read (same policy as get_int_flag).
bool get_double_flag(const util::Flags& flags, const std::string& name,
                     double fallback, double lo, double hi, double& out) {
  out = fallback;
  if (!flags.has(name)) return true;
  const std::string raw = flags.get_string(name, "");
  if (!util::parse_value(raw, out)) {
    std::fprintf(stderr, "dtnsim: bad value '%s' for --%s (number expected)\n",
                 raw.c_str(), name.c_str());
    return false;
  }
  if (out < lo || out > hi) {
    std::fprintf(stderr, "dtnsim: --%s %s out of range [%g, %g]\n", name.c_str(),
                 raw.c_str(), lo, hi);
    return false;
  }
  return true;
}

/// Parses the test-only `--fault action@trigger[:k=v...]` spec into a
/// SweepFaultPlan: actions throw|hang|kill; triggers point=N or (kill
/// only) bytes=M; modifiers ms=M (hang stall) and fires=N (activation
/// cap). Returns false after a diagnostic on anything malformed.
bool parse_fault_spec(const std::string& text, harness::SweepFaultPlan& plan) {
  const auto fail = [&text] {
    std::fprintf(stderr,
                 "dtnsim: bad --fault '%s' (expected action@trigger, e.g. "
                 "kill@point=2, kill@bytes=800, hang@point=0:ms=2000, "
                 "throw@point=1:fires=3)\n",
                 text.c_str());
    return false;
  };
  const std::size_t at = text.find('@');
  if (at == std::string::npos) return fail();
  const std::string action = text.substr(0, at);
  if (action == "throw") {
    plan.action = harness::SweepFaultPlan::Action::kThrow;
  } else if (action == "hang") {
    plan.action = harness::SweepFaultPlan::Action::kHang;
  } else if (action == "kill") {
    plan.action = harness::SweepFaultPlan::Action::kKill;
  } else {
    return fail();
  }
  bool has_trigger = false;
  std::string rest = text.substr(at + 1);
  while (!rest.empty()) {
    const std::size_t colon = rest.find(':');
    const std::string part = rest.substr(0, colon);
    rest = colon == std::string::npos ? "" : rest.substr(colon + 1);
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) return fail();
    const std::string key = part.substr(0, eq);
    std::int64_t value = 0;
    if (!util::parse_value(part.substr(eq + 1), value) || value < 0) return fail();
    if (key == "point") {
      plan.point = static_cast<std::size_t>(value);
      has_trigger = true;
    } else if (key == "bytes" && plan.action == harness::SweepFaultPlan::Action::kKill) {
      plan.journal_bytes = static_cast<std::uint64_t>(value);
      has_trigger = true;
    } else if (key == "ms") {
      plan.hang_ms = static_cast<int>(value);
    } else if (key == "fires") {
      plan.fires = static_cast<int>(value);
    } else {
      return fail();
    }
  }
  return has_trigger ? true : fail();
}

/// Strict flag policy: a misspelled flag must not silently run the
/// experiment with default parameters. Returns false (after printing the
/// offenders) when any flag is outside `allowed`.
bool check_flags(const util::Flags& flags, std::initializer_list<const char*> allowed) {
  const auto offenders = flags.unknown_flags(allowed);
  for (const auto& name : offenders) {
    std::fprintf(stderr, "dtnsim: unknown flag '--%s'\n", name.c_str());
  }
  return offenders.empty();
}

/// Parses `--shard i/N` (0-based shard index / shard count). Rejects
/// anything nonsensical — N == 0, i >= N, garbage — loudly: a bad shard
/// selector silently running the wrong slice of a campaign is exactly the
/// failure mode the fabric exists to prevent.
bool parse_shard_spec(const std::string& text, std::size_t& index, std::size_t& count) {
  const auto fail = [&text] {
    std::fprintf(stderr,
                 "dtnsim: bad --shard '%s' (expected i/N with 0 <= i < N, e.g. 0/4)\n",
                 text.c_str());
    return false;
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) return fail();
  std::int64_t index_v = 0;
  std::int64_t count_v = 0;
  if (!util::parse_value(text.substr(0, slash), index_v) ||
      !util::parse_value(text.substr(slash + 1), count_v)) {
    return fail();
  }
  if (count_v < 1 || index_v < 0 || index_v >= count_v) return fail();
  index = static_cast<std::size_t>(index_v);
  count = static_cast<std::size_t>(count_v);
  return true;
}

/// Size of `path` in bytes, 0 when missing — the fleet's liveness probe.
/// A shard journal only grows (one record per completed point), so "the
/// journal stopped growing" is the observable form of "the worker hung".
std::uint64_t file_size_of(const std::string& path) {
#if !defined(_WIN32)
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0 || st.st_size < 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
#else
  (void)path;
  return 0;
#endif
}

bool make_dir(const std::string& path) {
#if !defined(_WIN32)
  return ::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST;
#else
  (void)path;
  return false;
#endif
}

/// Spawns and supervises one `dtnsim sweep --shard i/N` child per shard,
/// each journaling into `work_dir`/shard-i.journal. Supervision policy:
///   - child exit 0 or 1  -> shard done (1 = it already retried per-point
///                           failures itself; a restart cannot help)
///   - child exit 2       -> config error; restarting is pointless, give up
///   - killed by a signal, exec failure, or a journal that stops growing
///     for > worker_timeout_s -> crash; restart with exponential backoff
///     (0.25 s doubling, capped at 5 s) up to `worker_retries` extra
///     attempts, every restart resuming the shard's own journal so only
///     in-flight points are recomputed
/// A shard that exhausts its attempts is abandoned; the caller's merge
/// reports its unrecorded points failed-with-reason (graceful degradation,
/// never a refusal to publish the survivors). The `--fault` plan is
/// forwarded only to each shard's FIRST spawn: restarted workers must not
/// re-trip the very fault they are recovering from. Fills `journals_out`
/// with every shard's journal path; returns 0 once supervision ends, 2 on
/// setup errors (unusable work dir).
/// `total_shards` >= `workers`: with `--hosts` the local fork/exec slots
/// cover shards [0, workers) of a larger selector whose tail shards
/// stream to remote daemons (run_remote_shard).
int run_worker_fleet(const std::string& cfg_path, const util::Flags& flags,
                     const harness::SpecSweepOptions& options, std::size_t workers,
                     std::size_t total_shards, int worker_retries,
                     double worker_timeout_s, const std::string& work_dir,
                     const std::string& argv0,
                     std::vector<std::string>& journals_out) {
  using Clock = std::chrono::steady_clock;
  if (!make_dir(work_dir)) {
    std::fprintf(stderr, "dtnsim: cannot create shard work dir '%s'\n",
                 work_dir.c_str());
    return 2;
  }
  // /proc/self/exe with an argv[0] fallback: the fleet must respawn the
  // binary that is running it even where procfs is absent.
  const std::string exe_resolved = util::self_exe_path(argv0);
  const std::string exe = exe_resolved.empty() ? argv0 : exe_resolved;
  const std::string fault_raw = flags.get_string("fault", "");

  struct Slot {
    std::size_t shard = 0;
    std::string journal;
    util::Subprocess proc;
    int spawns = 0;        ///< launch attempts so far (max 1 + worker_retries)
    bool running = false;
    bool done = false;     ///< child completed its shard (exit 0 or 1)
    bool gave_up = false;  ///< retries exhausted or config error
    bool pending_restart = false;
    Clock::time_point restart_at{};
    std::uint64_t last_size = 0;       ///< journal size at last growth
    Clock::time_point last_growth{};   ///< when the journal last grew
  };
  std::vector<Slot> slots(workers);
  journals_out.clear();
  for (std::size_t i = 0; i < workers; ++i) {
    slots[i].shard = i;
    slots[i].journal = work_dir + "/shard-" + std::to_string(i) + ".journal";
    journals_out.push_back(slots[i].journal);
  }

  const auto build_argv = [&](const Slot& slot) {
    std::vector<std::string> argv = {exe, "sweep", cfg_path};
    for (const auto& kv : flags.get_list("set")) {
      argv.push_back("--set");
      argv.push_back(kv);
    }
    for (const auto& axis : flags.get_list("axis")) {
      argv.push_back("--axis");
      argv.push_back(axis);
    }
    argv.push_back("--seeds");
    argv.push_back(std::to_string(options.seeds));
    argv.push_back("--seed-base");
    argv.push_back(util::format_value(options.seed_base));
    // Campaign parallelism comes from the worker count; each worker is
    // single-threaded unless the user sized --threads explicitly.
    argv.push_back("--threads");
    argv.push_back(std::to_string(flags.has("threads") ? options.threads : 1));
    if (options.retries > 0) {
      argv.push_back("--retries");
      argv.push_back(std::to_string(options.retries));
    }
    if (options.point_timeout_s > 0) {
      argv.push_back("--point-timeout");
      argv.push_back(util::format_value(options.point_timeout_s));
    }
    if (flags.has("sync-every")) {
      argv.push_back("--sync-every");
      argv.push_back(std::to_string(options.sync_every));
    }
    argv.push_back("--quiet");
    argv.push_back("--journal");
    argv.push_back(slot.journal);
    argv.push_back("--shard");
    argv.push_back(std::to_string(slot.shard) + "/" + std::to_string(total_shards));
    // Restarts ALWAYS resume (that is the point of the per-shard journal);
    // first spawns resume only when the whole campaign does.
    if (options.resume || slot.spawns > 0) argv.push_back("--resume");
    if (!fault_raw.empty() && slot.spawns == 0) {
      argv.push_back("--fault");
      argv.push_back(fault_raw);
    }
    return argv;
  };

  const auto schedule_or_give_up = [&](Slot& slot) {
    if (slot.spawns <= worker_retries) {
      const int exponent = std::min(slot.spawns - 1, 10);
      const double delay_s = std::min(5.0, 0.25 * static_cast<double>(1 << exponent));
      slot.pending_restart = true;
      slot.restart_at =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(delay_s));
      std::fprintf(stderr,
                   "dtnsim: restarting shard %zu/%zu in %.2f s (attempt %d of %d)\n",
                   slot.shard, total_shards, delay_s, slot.spawns + 1, 1 + worker_retries);
    } else {
      slot.gave_up = true;
      std::fprintf(stderr,
                   "dtnsim: shard %zu/%zu gave up after %d attempt(s); its "
                   "unrecorded points will be reported failed\n",
                   slot.shard, total_shards, slot.spawns);
    }
  };

  const auto launch = [&](Slot& slot) {
    slot.pending_restart = false;
    const std::vector<std::string> argv = build_argv(slot);
    ++slot.spawns;
    std::string error;
    slot.proc = util::Subprocess();
    // Workers' stdout (their own tables) would corrupt the driver's output;
    // stderr stays inherited so worker diagnostics reach the operator.
    if (!slot.proc.spawn(argv, /*discard_stdout=*/true, &error)) {
      std::fprintf(stderr, "dtnsim: cannot spawn worker for shard %zu/%zu: %s\n",
                   slot.shard, total_shards, error.c_str());
      schedule_or_give_up(slot);
      return;
    }
    slot.running = true;
    slot.last_size = file_size_of(slot.journal);
    slot.last_growth = Clock::now();
  };

  for (auto& slot : slots) launch(slot);
  bool active = true;
  while (active) {
    active = false;
    const Clock::time_point now = Clock::now();
    for (auto& slot : slots) {
      if (slot.pending_restart) {
        if (now >= slot.restart_at) launch(slot);
        if (slot.pending_restart) {  // still waiting (or respawn failed again)
          active = true;
          continue;
        }
      }
      if (!slot.running) continue;
      const util::ProcessStatus status = slot.proc.poll();
      if (status.running) {
        active = true;
        if (worker_timeout_s > 0) {
          const std::uint64_t size = file_size_of(slot.journal);
          if (size != slot.last_size) {
            slot.last_size = size;
            slot.last_growth = now;
          } else if (std::chrono::duration<double>(now - slot.last_growth).count() >
                     worker_timeout_s) {
            std::fprintf(stderr,
                         "dtnsim: shard %zu/%zu made no journal progress for "
                         "%.1f s; killing the worker\n",
                         slot.shard, total_shards, worker_timeout_s);
            slot.proc.kill_hard();
            slot.proc.wait();
            slot.running = false;
            schedule_or_give_up(slot);
            if (slot.pending_restart) active = true;
          }
        }
        continue;
      }
      slot.running = false;
      if (status.exited && (status.exit_code == 0 || status.exit_code == 1)) {
        slot.done = true;
      } else if (status.exited && status.exit_code == 2) {
        slot.gave_up = true;
        std::fprintf(stderr,
                     "dtnsim: worker for shard %zu/%zu exited with a "
                     "configuration error (exit 2); not restarting\n",
                     slot.shard, total_shards);
      } else {
        if (status.signaled) {
          std::fprintf(stderr, "dtnsim: worker for shard %zu/%zu died on signal %d\n",
                       slot.shard, total_shards, status.term_signal);
        } else {
          std::fprintf(stderr,
                       "dtnsim: worker for shard %zu/%zu exited abnormally "
                       "(code %d%s)\n",
                       slot.shard, total_shards, status.exit_code,
                       status.exit_code == 127 ? ", exec failed" : "");
        }
        schedule_or_give_up(slot);
        if (slot.pending_restart) active = true;
      }
    }
    if (active) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

// ---- multi-host fabric ------------------------------------------------------

/// Reads a whole file into `out` (binary). False on any I/O problem.
bool read_file_bytes(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[65536];
  out.clear();
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, got);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

std::string crc_hex8(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return std::string(buf);
}

/// One `--hosts` endpoint.
struct HostSpec {
  std::string host;
  int port = 0;
};

/// Parses `--hosts host:port[,host:port...]`. Loud diagnostic + false on
/// anything malformed — a typo must not silently shrink the fleet.
bool parse_hosts_spec(const std::string& csv, std::vector<HostSpec>& out) {
  const auto fail = [](const std::string& entry) {
    std::fprintf(
        stderr,
        "dtnsim: bad --hosts entry '%s' (expected host:port[,host:port...])\n",
        entry.c_str());
    return false;
  };
  out.clear();
  for (const std::string& entry : util::split_csv(csv)) {
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size()) {
      return fail(entry);
    }
    std::int64_t port = 0;
    if (!util::parse_value(entry.substr(colon + 1), port) || port < 1 ||
        port > 65535) {
      return fail(entry);
    }
    out.push_back(HostSpec{entry.substr(0, colon), static_cast<int>(port)});
  }
  if (out.empty()) {
    std::fprintf(stderr, "dtnsim: --hosts needs at least one host:port\n");
    return false;
  }
  return true;
}

/// Shared health book of the remote hosts: a failed connect, handshake,
/// or mid-campaign disconnect marks the host dead for an exponentially
/// growing window (the same 0.25 s doubling capped at 5 s as local worker
/// restarts), so every shard thread's round-robin rotation skips it until
/// the backoff expires.
class HostBook {
 public:
  explicit HostBook(const std::vector<HostSpec>& hosts) {
    entries_.reserve(hosts.size());
    for (const auto& h : hosts) entries_.push_back(Entry{h, {}, 0});
  }

  /// First live host at or after `preferred` (round-robin). -1 when every
  /// host is inside its backoff window.
  int pick(std::size_t preferred) {
    const auto now = std::chrono::steady_clock::now();
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t k = 0; k < entries_.size(); ++k) {
      const std::size_t i = (preferred + k) % entries_.size();
      if (entries_[i].dead_until <= now) return static_cast<int>(i);
    }
    return -1;
  }

  void mark_dead(int index) {
    const std::lock_guard<std::mutex> lock(mutex_);
    Entry& e = entries_[static_cast<std::size_t>(index)];
    const int exponent = std::min(e.failures, 10);
    ++e.failures;
    const double delay_s =
        std::min(5.0, 0.25 * static_cast<double>(1 << exponent));
    e.dead_until = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(delay_s));
  }

  void mark_alive(int index) {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_[static_cast<std::size_t>(index)].failures = 0;
    entries_[static_cast<std::size_t>(index)].dead_until = {};
  }

  HostSpec spec(int index) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_[static_cast<std::size_t>(index)].spec;
  }

 private:
  struct Entry {
    HostSpec spec;
    std::chrono::steady_clock::time_point dead_until{};
    int failures = 0;
  };
  std::vector<Entry> entries_;
  std::mutex mutex_;
};

/// Outcome of one remote shard's supervision.
struct RemoteShardOutcome {
  bool journal_received = false;
  std::string origin;  ///< "host:port" that completed the shard
};

/// Drives ONE remote shard to completion: deal it to a live host (round
/// -robin from `remote_index`), stream the handshake + assignment, watch
/// the journal-growth heartbeat, and land the shipped journal under the
/// shard dir via the same tmp + durable_replace publish as `--out`.
/// Mirrors the local supervision policy exactly: heartbeat stall or a
/// dead connection => reattempt on the next live host with backoff, up to
/// 1 + worker_retries attempts, then give up (the merge degrades the
/// shard's unrecorded points to failed-with-reason). Reassignments ALWAYS
/// set resume: a shard that lands back on a daemon that already journaled
/// part of it recomputes only the gap.
void run_remote_shard(const harness::SpecSweepOptions& campaign,
                      std::size_t shard, std::size_t total_shards,
                      std::size_t remote_index, HostBook& book,
                      int worker_retries, double worker_timeout_s,
                      const std::string& journal_path,
                      RemoteShardOutcome& outcome) {
  using Clock = std::chrono::steady_clock;
  harness::SpecSweepOptions assigned = campaign;
  assigned.shard_index = shard;
  assigned.shard_count = total_shards;
  assigned.journal_path.clear();  // daemon-local choices stay the daemon's
  assigned.threads = 0;
  assigned.progress = nullptr;
  assigned.note = nullptr;
  assigned.fault_plan = nullptr;
  const std::string fingerprint = harness::sweep_campaign_fingerprint(assigned);
  const std::string hello = harness::serialize_sweep_hello(fingerprint);

  int spawns = 0;
  while (spawns <= worker_retries) {
    const int host_index =
        book.pick(remote_index + static_cast<std::size_t>(spawns));
    if (host_index < 0) {
      // Every host is inside its backoff window; waiting it out costs
      // nothing and does not consume an attempt.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    if (spawns > 0) {
      const int exponent = std::min(spawns - 1, 10);
      const double delay_s =
          std::min(5.0, 0.25 * static_cast<double>(1 << exponent));
      std::fprintf(
          stderr,
          "dtnsim: reassigning shard %zu/%zu in %.2f s (attempt %d of %d)\n",
          shard, total_shards, delay_s, spawns + 1, 1 + worker_retries);
      std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
    }
    ++spawns;
    const HostSpec host = book.spec(host_index);
    const std::string where = host.host + ":" + std::to_string(host.port);
    std::string error;
    net::Stream conn = net::Stream::connect(host.host, host.port, 5000, &error);
    if (!conn.open()) {
      std::fprintf(stderr, "dtnsim: shard %zu/%zu: %s\n", shard, total_shards,
                   error.c_str());
      book.mark_dead(host_index);
      continue;
    }
    net::FrameDecoder decoder;
    net::Message msg;
    // The echo wait is generous on purpose: a busy daemon (one campaign
    // at a time) parks this connection in its listen backlog until its
    // current shard completes.
    const bool handshake_ok =
        net::send_message(conn, net::MessageType::kHello, hello) &&
        net::recv_message(conn, decoder, 30000, &msg, &error) ==
            net::WireRecvStatus::kMessage &&
        msg.type == net::MessageType::kHello && msg.payload == hello;
    if (!handshake_ok) {
      std::fprintf(stderr,
                   "dtnsim: shard %zu/%zu: handshake with %s failed%s%s\n",
                   shard, total_shards, where.c_str(), error.empty() ? "" : ": ",
                   error.c_str());
      book.mark_dead(host_index);
      continue;
    }
    assigned.resume = campaign.resume || spawns > 1;
    if (!net::send_message(conn, net::MessageType::kAssign,
                           harness::serialize_sweep_assignment(assigned))) {
      book.mark_dead(host_index);
      continue;
    }
    book.mark_alive(host_index);  // spoke the protocol; clear its backoff

    std::string journal_bytes;
    bool have_journal = false;
    std::uint64_t last_bytes = 0;
    Clock::time_point last_growth = Clock::now();
    bool attempt_failed = false;
    bool shard_done = false;
    bool daemon_refused = false;
    while (!attempt_failed && !shard_done) {
      switch (net::recv_message(conn, decoder, 500, &msg, &error)) {
        case net::WireRecvStatus::kMessage:
          switch (msg.type) {
            case net::MessageType::kProgress: {
              std::uint64_t records = 0;
              std::uint64_t bytes = 0;
              if (harness::parse_sweep_progress(msg.payload, &records, &bytes) &&
                  bytes != last_bytes) {
                last_bytes = bytes;
                last_growth = Clock::now();
              }
              break;
            }
            case net::MessageType::kJournal:
              journal_bytes = std::move(msg.payload);
              have_journal = true;
              break;
            case net::MessageType::kDone:
              shard_done = true;
              break;
            case net::MessageType::kError:
              // The daemon refused or failed the assignment in a way a
              // reassignment cannot fix (foreign fingerprint, unusable
              // scratch, structural spec error): mirror the local
              // exit-2 no-restart policy and give the shard up.
              std::fprintf(stderr, "dtnsim: shard %zu/%zu: %s reported: %s\n",
                           shard, total_shards, where.c_str(),
                           msg.payload.c_str());
              daemon_refused = true;
              shard_done = true;
              break;
            default:
              std::fprintf(stderr,
                           "dtnsim: shard %zu/%zu: unexpected %s message "
                           "from %s\n",
                           shard, total_shards,
                           net::message_type_token(msg.type), where.c_str());
              book.mark_dead(host_index);
              attempt_failed = true;
              break;
          }
          break;
        case net::WireRecvStatus::kTimeout:
          // The liveness probe is the REPORTED journal length, exactly
          // like the local fleet's stat() of the shard journal: a daemon
          // that heartbeats without growing its journal is a hung worker.
          if (worker_timeout_s > 0 &&
              std::chrono::duration<double>(Clock::now() - last_growth).count() >
                  worker_timeout_s) {
            std::fprintf(stderr,
                         "dtnsim: shard %zu/%zu on %s made no journal "
                         "progress for %.1f s; reassigning\n",
                         shard, total_shards, where.c_str(), worker_timeout_s);
            book.mark_dead(host_index);
            attempt_failed = true;
          }
          break;
        case net::WireRecvStatus::kEof:
        case net::WireRecvStatus::kCorrupt:
        case net::WireRecvStatus::kError:
          std::fprintf(stderr,
                       "dtnsim: shard %zu/%zu: connection to %s lost%s%s\n",
                       shard, total_shards, where.c_str(),
                       error.empty() ? "" : ": ", error.c_str());
          book.mark_dead(host_index);
          attempt_failed = true;
          break;
      }
    }
    if (attempt_failed) continue;
    if (daemon_refused) return;
    if (!have_journal) {
      std::fprintf(stderr,
                   "dtnsim: shard %zu/%zu: %s sent DONE without a journal\n",
                   shard, total_shards, where.c_str());
      book.mark_dead(host_index);
      continue;
    }
    const std::string tmp = journal_path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    bool wrote = f != nullptr &&
                 std::fwrite(journal_bytes.data(), 1, journal_bytes.size(), f) ==
                     journal_bytes.size();
    if (f != nullptr && std::fclose(f) != 0) wrote = false;
    std::string publish_error;
    if (!wrote ||
        !harness::durable_replace(tmp, journal_path, &publish_error)) {
      std::fprintf(stderr,
                   "dtnsim: shard %zu/%zu: cannot store received journal "
                   "'%s'%s%s\n",
                   shard, total_shards, journal_path.c_str(),
                   publish_error.empty() ? "" : ": ", publish_error.c_str());
      std::remove(tmp.c_str());
      return;  // local disk problem; another remote attempt cannot help
    }
    outcome.journal_received = true;
    outcome.origin = where;
    return;
  }
  std::fprintf(stderr,
               "dtnsim: shard %zu/%zu gave up after %d attempt(s); its "
               "unrecorded points will be reported failed\n",
               shard, total_shards, spawns);
}

/// Serves ONE accepted campaign connection end-to-end. Never throws; every
/// refusal is loud on stderr AND sent back as an ERROR frame when the
/// connection still stands.
void serve_one_campaign(net::Stream conn, const std::string& scratch,
                        std::size_t threads) {
  const std::string peer = conn.peer();
  const auto log = [&peer](const std::string& message) {
    std::fprintf(stderr, "dtnsim: [%s] %s\n", peer.c_str(), message.c_str());
  };
  net::FrameDecoder decoder;
  net::Message msg;
  std::string error;
  if (net::recv_message(conn, decoder, 30000, &msg, &error) !=
          net::WireRecvStatus::kMessage ||
      msg.type != net::MessageType::kHello) {
    log("no HELLO" + (error.empty() ? std::string() : ": " + error));
    return;
  }
  std::uint64_t fp_len = 0;
  std::uint32_t fp_crc = 0;
  if (!harness::parse_sweep_hello(msg.payload, &fp_len, &fp_crc, &error)) {
    log("refusing HELLO: " + error);
    net::send_message(conn, net::MessageType::kError, error);
    return;
  }
  // The ack is a verbatim echo: the driver checks the daemon speaks the
  // same protocol version and saw the same fingerprint digest.
  if (!net::send_message(conn, net::MessageType::kHello, msg.payload)) return;
  if (net::recv_message(conn, decoder, 30000, &msg, &error) !=
          net::WireRecvStatus::kMessage ||
      msg.type != net::MessageType::kAssign) {
    log("no ASSIGN" + (error.empty() ? std::string() : ": " + error));
    return;
  }
  harness::SpecSweepOptions options;
  if (!harness::parse_sweep_assignment(msg.payload, &options, &error)) {
    log("refusing ASSIGN: " + error);
    net::send_message(conn, net::MessageType::kError, error);
    return;
  }
  // The fingerprint recomputed from what was PARSED must match the digest
  // advertised in HELLO: any drift — version skew between builds, a spec
  // vocabulary mismatch, payload damage the frame CRC could not see — is
  // a foreign campaign. Refuse loudly rather than compute wrong bits.
  const std::string fingerprint = harness::sweep_campaign_fingerprint(options);
  if (fingerprint.size() != fp_len || util::crc32(fingerprint) != fp_crc) {
    const std::string refusal =
        "campaign fingerprint mismatch (ASSIGN does not match the HELLO "
        "digest); refusing the foreign campaign";
    log(refusal);
    net::send_message(conn, net::MessageType::kError, refusal);
    return;
  }
  options.threads = threads;
  // Per-campaign scratch journal, keyed by fingerprint AND shard: a
  // reassigned shard resumes exactly its own bytes, and campaigns never
  // shadow each other.
  options.journal_path =
      scratch + "/campaign-" + crc_hex8(util::crc32(fingerprint)) + "-shard-" +
      std::to_string(options.shard_index) + "-of-" +
      std::to_string(options.shard_count) + ".journal";
  log("assigned shard " + std::to_string(options.shard_index) + "/" +
      std::to_string(options.shard_count) +
      (options.resume ? " (resume)" : "") + ", journal '" +
      options.journal_path + "'");
  std::atomic<std::uint64_t> points_done{0};
  options.progress = [&points_done](const std::string&) {
    points_done.fetch_add(1);
  };
  options.note = [&log](const std::string& message) { log(message); };

  std::atomic<bool> finished{false};
  std::exception_ptr failure;
  std::vector<harness::SpecPointResult> results;
  std::thread runner([&] {
    try {
      results = harness::run_spec_sweep(options);
    } catch (...) {
      failure = std::current_exception();
    }
    finished.store(true);
  });
  // Journal-growth heartbeat every 200 ms. A dead driver does NOT abort
  // the shard: the journal preserves the finished points, so the
  // reassigned shard (resume, possibly back on this daemon) recomputes
  // only the gap.
  bool driver_alive = true;
  while (!finished.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (!driver_alive) continue;
    const std::string beat = harness::serialize_sweep_progress(
        points_done.load(), file_size_of(options.journal_path));
    if (!net::send_message(conn, net::MessageType::kProgress, beat)) {
      driver_alive = false;
      log("driver connection lost; finishing the shard for a future resume");
    }
  }
  runner.join();
  if (failure) {
    std::string what = "shard failed";
    try {
      std::rethrow_exception(failure);
    } catch (const std::exception& e) {
      what = e.what();
    }
    log("shard failed: " + what);
    if (driver_alive) net::send_message(conn, net::MessageType::kError, what);
    return;
  }
  if (!driver_alive) return;
  std::string journal_bytes;
  if (!read_file_bytes(options.journal_path, journal_bytes)) {
    const std::string what =
        "cannot read back shard journal '" + options.journal_path + "'";
    log(what);
    net::send_message(conn, net::MessageType::kError, what);
    return;
  }
  bool failures_present = false;
  for (const auto& point : results) {
    if (point.exec.failed()) failures_present = true;
  }
  if (net::send_message(conn, net::MessageType::kJournal, journal_bytes)) {
    net::send_message(conn, net::MessageType::kDone,
                      failures_present ? "1" : "0");
  }
  log("shard " + std::to_string(options.shard_index) + "/" +
      std::to_string(options.shard_count) + " complete: " +
      std::to_string(points_done.load()) + " point(s) run, " +
      std::to_string(journal_bytes.size()) + " journal byte(s) shipped" +
      (failures_present ? ", with failed points" : ""));
}

/// `dtnsim serve`: the resident multi-host worker daemon. Accepts one
/// campaign at a time (further drivers queue in the listen backlog), runs
/// the assigned shard through the journaled run_spec_sweep path, ships
/// the journal back, and survives to take the next assignment. Runs until
/// killed.
int cmd_serve(const util::Flags& flags) {
  if (!check_flags(flags, {"port", "bind", "scratch", "threads", "port-file"})) {
    return usage();
  }
  if (!flags.has("port")) {
    std::fprintf(stderr,
                 "dtnsim: serve needs --port (0 picks an ephemeral port)\n");
    return 2;
  }
  std::int64_t port = 0;
  std::int64_t threads = 0;
  if (!get_int_flag(flags, "port", 0, 0, 65535, port) ||
      !get_int_flag(flags, "threads", 0, 0, 4096, threads)) {
    return 2;
  }
  const std::string bind_addr = flags.get_string("bind", "127.0.0.1");
  const std::string scratch = flags.get_string("scratch", "dtnsim-serve.scratch");
  if (!make_dir(scratch)) {
    std::fprintf(stderr, "dtnsim: cannot create scratch dir '%s'\n",
                 scratch.c_str());
    return 2;
  }
  std::string error;
  net::Listener listener =
      net::Listener::open(bind_addr, static_cast<int>(port), &error);
  if (!listener.is_open()) {
    std::fprintf(stderr, "dtnsim: %s\n", error.c_str());
    return 2;
  }
  // --port 0 callers (tests, colocated fleets) read the bound port from
  // --port-file; written via rename so a poller never sees a partial file.
  const std::string port_file = flags.get_string("port-file", "");
  if (!port_file.empty()) {
    const std::string tmp = port_file + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    bool ok = f != nullptr && std::fprintf(f, "%d\n", listener.port()) > 0;
    if (f != nullptr && std::fclose(f) != 0) ok = false;
    if (!ok || std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      std::fprintf(stderr, "dtnsim: cannot write --port-file '%s'\n",
                   port_file.c_str());
      return 2;
    }
  }
  std::fprintf(stderr,
               "dtnsim: serving on %s:%d (scratch '%s'; no auth — bind to "
               "loopback or trusted networks only)\n",
               bind_addr.c_str(), listener.port(), scratch.c_str());
  for (;;) {
    net::Stream conn = listener.accept(1000, &error);
    if (!conn.open()) {
      if (!error.empty()) {
        std::fprintf(stderr, "dtnsim: accept failed: %s\n", error.c_str());
        return 1;
      }
      continue;  // accept timeout: keep listening
    }
    serve_one_campaign(std::move(conn), scratch,
                       static_cast<std::size_t>(threads));
  }
}

void print_point(const harness::PointResult& point) {
  util::TablePrinter table({"metric", "mean", "stddev", "seeds"});
  for (const auto metric :
       {harness::Metric::kDeliveryRatio, harness::Metric::kLatency,
        harness::Metric::kGoodput, harness::Metric::kControlMb, harness::Metric::kRelayed}) {
    table.new_row()
        .add_cell(harness::metric_name(metric))
        .add_cell(harness::metric_value(point, metric),
                  metric == harness::Metric::kLatency ? 1 : 4)
        .add_cell(metric == harness::Metric::kDeliveryRatio
                      ? point.delivery_ratio.stddev()
                  : metric == harness::Metric::kLatency   ? point.latency.stddev()
                  : metric == harness::Metric::kGoodput   ? point.goodput.stddev()
                  : metric == harness::Metric::kControlMb ? point.control_mb.stddev()
                                                          : point.relayed.stddev(),
                  4)
        .add_cell(static_cast<long long>(point.delivery_ratio.count()));
  }
  std::printf("%s", table.to_string().c_str());
}

int cmd_run(const std::string& path, const util::Flags& flags) {
  if (!check_flags(flags, {"set", "seeds", "seed-base", "threads", "quiet"})) {
    return usage();
  }
  harness::SpecSweepOptions options;
  options.base = harness::load_spec_with_overrides(path, flags.get_list("set"));
  std::int64_t seeds = 0;
  std::int64_t seed_base = 0;
  std::int64_t threads = 0;
  if (!get_int_flag(flags, "seeds", 1, 1, INT32_MAX, seeds) ||
      !get_int_flag(flags, "seed-base", static_cast<std::int64_t>(options.base.seed),
                    0, INT64_MAX, seed_base) ||
      !get_int_flag(flags, "threads", 0, 0, 4096, threads)) {
    return 2;
  }
  options.seeds = static_cast<int>(seeds);
  options.seed_base = static_cast<std::uint64_t>(seed_base);
  options.threads = static_cast<std::size_t>(threads);
  if (!flags.get_bool("quiet", false)) {
    options.progress = [](const std::string& label) {
      std::fprintf(stderr, "  done: %s\n", label.c_str());
    };
  }
  std::printf("scenario '%s': %d nodes, %.0f s, protocol %s, %d seed(s)\n",
              options.base.name.c_str(), options.base.node_count(),
              options.base.duration_s, options.base.protocol.name.c_str(),
              options.seeds);
  const auto results = harness::run_spec_sweep(options);
  if (results.empty() || results.front().result.delivery_ratio.count() == 0) {
    std::fprintf(stderr, "no runs executed (seeds = %d)\n", options.seeds);
    return 1;
  }
  print_point(results.front().result);
  return 0;
}

int cmd_sweep(const std::string& path, const util::Flags& flags,
              const std::string& argv0) {
  if (!check_flags(flags, {"set", "axis", "seeds", "seed-base", "threads", "quiet",
                           "out", "journal", "resume", "retries", "point-timeout",
                           "sync-every", "fault", "shard", "workers", "hosts",
                           "worker-retries", "worker-timeout"})) {
    return usage();
  }
  harness::SpecSweepOptions options;
  options.base = harness::load_spec_with_overrides(path, flags.get_list("set"));
  for (const auto& axis_arg : flags.get_list("axis")) {
    const auto [key, csv] = harness::split_assignment(axis_arg);
    harness::SweepAxis axis;
    axis.key = key;
    axis.values = util::split_csv(csv);
    if (axis.values.empty()) {
      std::fprintf(stderr, "axis '%s' has no values\n", key.c_str());
      return 2;
    }
    options.axes.push_back(std::move(axis));
  }
  std::int64_t seeds = 0;
  std::int64_t seed_base = 0;
  std::int64_t threads = 0;
  std::int64_t retries = 0;
  std::int64_t sync_every = 0;
  std::int64_t workers = 0;
  std::int64_t worker_retries = 0;
  double point_timeout = 0.0;
  double worker_timeout = 0.0;
  // seed-base default is the file's scenario.seed, same as `dtnsim run`,
  // so a one-point sweep and a plain run of the same cfg agree.
  if (!get_int_flag(flags, "seeds", 2, 1, INT32_MAX, seeds) ||
      !get_int_flag(flags, "seed-base", static_cast<std::int64_t>(options.base.seed),
                    0, INT64_MAX, seed_base) ||
      !get_int_flag(flags, "threads", 0, 0, 4096, threads) ||
      !get_int_flag(flags, "retries", 0, 0, 1000, retries) ||
      !get_int_flag(flags, "sync-every", 1, 0, INT32_MAX, sync_every) ||
      !get_double_flag(flags, "point-timeout", 0.0, 0.0, 1e9, point_timeout) ||
      !get_int_flag(flags, "workers", 0, 1, 256, workers) ||
      !get_int_flag(flags, "worker-retries", 2, 0, 100, worker_retries) ||
      !get_double_flag(flags, "worker-timeout", 0.0, 0.0, 1e9, worker_timeout)) {
    return 2;
  }
  // A present-but-zero timeout is a config error, not "no watchdog": the
  // user asked for a cap and got none.
  if (flags.has("point-timeout") && point_timeout <= 0.0) {
    std::fprintf(stderr, "dtnsim: --point-timeout must be > 0 (omit the flag to "
                         "disable the per-point watchdog)\n");
    return 2;
  }
  if (flags.has("worker-timeout") && worker_timeout <= 0.0) {
    std::fprintf(stderr, "dtnsim: --worker-timeout must be > 0 (omit the flag to "
                         "disable the worker liveness watchdog)\n");
    return 2;
  }
  std::vector<HostSpec> hosts;
  if (flags.has("hosts") &&
      !parse_hosts_spec(flags.get_string("hosts", ""), hosts)) {
    return 2;
  }
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  if (flags.has("shard")) {
    if (flags.has("workers")) {
      std::fprintf(stderr, "dtnsim: --shard and --workers are mutually exclusive "
                           "(--workers assigns the shards itself)\n");
      return 2;
    }
    if (flags.has("hosts")) {
      std::fprintf(stderr, "dtnsim: --shard and --hosts are mutually exclusive "
                           "(--hosts assigns the shards itself)\n");
      return 2;
    }
    if (!parse_shard_spec(flags.get_string("shard", ""), shard_index, shard_count)) {
      return 2;
    }
  }
  const bool fleet = flags.has("workers") || !hosts.empty();
  // --workers and --hosts compose into ONE shard selector: local fork/exec
  // slots take the leading shards, each remote daemon takes one trailing
  // shard. total_shards is what every worker's --shard i/N denominates.
  const std::size_t local_workers =
      flags.has("workers") ? static_cast<std::size_t>(workers) : 0;
  const std::size_t total_shards = local_workers + hosts.size();
  options.seeds = static_cast<int>(seeds);
  options.seed_base = static_cast<std::uint64_t>(seed_base);
  options.threads = static_cast<std::size_t>(threads);
  options.retries = static_cast<int>(retries);
  options.sync_every = static_cast<int>(sync_every);
  options.point_timeout_s = point_timeout;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  // The CLI always isolates worker failures: one bad point out of ten
  // thousand must cost that point, not the campaign. (Structural errors —
  // bad axis keys, invalid specs — still fail fast at grid expansion.)
  options.isolate_failures = true;
  options.resume = flags.get_bool("resume", false);
  options.note = [](const std::string& message) {
    std::fprintf(stderr, "dtnsim: %s\n", message.c_str());
  };
  harness::SweepFaultPlan fault_plan;
  if (flags.has("fault")) {
    if (!parse_fault_spec(flags.get_string("fault", ""), fault_plan)) return 2;
    // In fleet mode the plan is validated here but EXECUTED by the workers:
    // the raw spec is forwarded to each shard's first spawn (restarts omit
    // it — a restarted worker must not re-trip the fault it is recovering
    // from), and the driver itself never simulates.
    if (!fleet) options.fault_plan = &fault_plan;
  }
  if (!flags.get_bool("quiet", false)) {
    options.progress = [](const std::string& label) {
      std::fprintf(stderr, "  done: %s\n", label.c_str());
    };
  }
  // Journal: explicit --journal, else ride alongside --out. Every
  // completed point streams into it (checksummed, fsync'd per
  // --sync-every), so a killed campaign resumes with --resume instead of
  // starting over. In fleet mode the base path only anchors the shard
  // work dir (`<base>.shards/`) — the driver itself never journals.
  const std::string out_path = flags.get_string("out", "");
  std::string journal_base = flags.get_string("journal", "");
  if (journal_base.empty() && !out_path.empty()) {
    journal_base = out_path + ".journal";
  }
  if (fleet && journal_base.empty()) {
    std::fprintf(stderr, "dtnsim: %s needs --out or --journal to place "
                         "the shard journals\n",
                 flags.has("workers") ? "--workers" : "--hosts");
    return 2;
  }
  if (!fleet) options.journal_path = journal_base;
  if (options.resume && journal_base.empty()) {
    std::fprintf(stderr, "dtnsim: --resume needs --out or --journal to locate "
                         "the campaign journal\n");
    return 2;
  }
  // Open --out (via a sibling temp file) before the campaign runs: an
  // unwritable path must fail in seconds, not after hours of simulation
  // with the JSON discarded — a config error (exit 2), not a runtime one.
  // The temp + rename keeps a pre-existing results file intact until the
  // new one is complete — a typo'd axis key (which throws inside
  // run_spec_sweep) or a short write (disk full) must not wipe the
  // previous campaign's results.
  const std::string tmp_path = out_path + ".tmp";
  std::FILE* out_file = nullptr;
  if (!out_path.empty()) {
    out_file = std::fopen(tmp_path.c_str(), "w");
    if (out_file == nullptr) {
      std::fprintf(stderr, "dtnsim: cannot write '%s'\n", out_path.c_str());
      return 2;
    }
  }
  std::size_t grid = 1;
  for (const auto& axis : options.axes) grid *= axis.values.size();
  std::printf("sweep '%s': %zu point(s) x %d seed(s)\n", options.base.name.c_str(),
              grid, options.seeds);
  if (shard_count > 1) {
    const std::size_t mine =
        grid / shard_count + (shard_index < grid % shard_count ? 1 : 0);
    std::printf("shard %zu/%zu: executing %zu of %zu point(s)\n", shard_index,
                shard_count, mine, grid);
  }
  const std::string shard_dir = journal_base + ".shards";
  if (local_workers > 0) {
    std::printf("workers: %lld (shard journals under '%s')\n",
                static_cast<long long>(workers), shard_dir.c_str());
  }
  if (!hosts.empty()) {
    std::printf("hosts: %zu daemon(s) covering shards %zu..%zu (shard "
                "journals under '%s')\n",
                hosts.size(), local_workers, total_shards - 1,
                shard_dir.c_str());
  }
  std::vector<harness::SpecPointResult> results;
  harness::SweepMergeStats merge_stats;
  std::vector<std::string> shard_journals;
  try {
    if (fleet) {
      if (!make_dir(shard_dir)) {
        std::fprintf(stderr, "dtnsim: cannot create shard work dir '%s'\n",
                     shard_dir.c_str());
        if (out_file != nullptr) {
          std::fclose(out_file);
          std::remove(tmp_path.c_str());
        }
        return 2;
      }
      shard_journals.clear();
      for (std::size_t s = 0; s < total_shards; ++s) {
        shard_journals.push_back(shard_dir + "/shard-" + std::to_string(s) +
                                 ".journal");
      }
      // Remote supervision threads run alongside the local fork/exec
      // fleet; both write into the same shard dir, one journal per shard.
      std::vector<std::string> origins(total_shards);
      std::vector<RemoteShardOutcome> outcomes(hosts.size());
      HostBook book(hosts);
      std::vector<std::thread> remote_threads;
      for (std::size_t r = 0; r < hosts.size(); ++r) {
        const std::size_t s = local_workers + r;
        const std::string& shard_journal = shard_journals[s];
        if (options.resume) {
          // Audit before (re)assigning: a shard whose journal already
          // records every point ok has nothing left to compute.
          switch (harness::audit_shard_journal(options, s, total_shards,
                                               shard_journal)) {
            case harness::ShardJournalState::kComplete:
              std::fprintf(stderr,
                           "dtnsim: shard %zu/%zu is already complete in "
                           "'%s'; not reassigning\n",
                           s, total_shards, shard_journal.c_str());
              continue;
            case harness::ShardJournalState::kForeign:
              std::fprintf(stderr,
                           "dtnsim: shard journal '%s' belongs to a "
                           "different campaign; recomputing shard %zu/%zu\n",
                           shard_journal.c_str(), s, total_shards);
              std::remove(shard_journal.c_str());
              break;
            case harness::ShardJournalState::kPartial:
              break;
          }
        } else {
          // Fresh campaign: a stale journal from an older campaign must
          // not leak into the merge (local workers truncate theirs the
          // same way when spawned without --resume).
          std::remove(shard_journal.c_str());
        }
        remote_threads.emplace_back([&options, s, total_shards, r, &book,
                                     worker_retries, worker_timeout,
                                     &shard_journal, &outcomes] {
          run_remote_shard(options, s, total_shards, r, book,
                           static_cast<int>(worker_retries), worker_timeout,
                           shard_journal, outcomes[r]);
        });
      }
      int fleet_rc = 0;
      if (local_workers > 0) {
        std::vector<std::string> local_journals;
        fleet_rc = run_worker_fleet(path, flags, options, local_workers,
                                    total_shards, static_cast<int>(worker_retries),
                                    worker_timeout, shard_dir, argv0,
                                    local_journals);
      }
      for (auto& thread : remote_threads) thread.join();
      if (fleet_rc != 0) {
        if (out_file != nullptr) {
          std::fclose(out_file);
          std::remove(tmp_path.c_str());
        }
        return fleet_rc;
      }
      for (std::size_t r = 0; r < outcomes.size(); ++r) {
        if (outcomes[r].journal_received) {
          origins[local_workers + r] = outcomes[r].origin;
        }
      }
      results = harness::merge_sweep_journals(options, shard_journals,
                                              &merge_stats, origins);
      std::printf("merged %zu shard journal(s): %zu ok, %zu failed, %zu missing\n",
                  merge_stats.journals_read, merge_stats.points_ok,
                  merge_stats.points_failed, merge_stats.points_missing);
    } else {
      results = harness::run_spec_sweep(options);
    }
  } catch (...) {
    if (out_file != nullptr) {
      std::fclose(out_file);
      std::remove(tmp_path.c_str());
    }
    throw;
  }
  std::size_t resumed_points = 0;
  std::size_t failed_points = 0;
  for (const auto& point : results) {
    if (point.exec.resumed) ++resumed_points;
    if (point.exec.failed()) ++failed_points;
  }
  if (options.resume && !fleet) {
    std::printf("resumed %zu completed point(s) from the journal; recomputed %zu\n",
                resumed_points, results.size() - resumed_points);
  }
  // The table shows what THIS invocation stands behind: a standalone shard
  // prints only its own slice (skipped rows are another process's job);
  // the JSON keeps every point, skipped ones marked as such.
  if (shard_count > 1) {
    std::vector<harness::SpecPointResult> mine;
    for (const auto& point : results) {
      if (!point.exec.skipped()) mine.push_back(point);
    }
    std::printf("\n%s", harness::sweep_table(mine).to_string().c_str());
  } else {
    std::printf("\n%s", harness::sweep_table(results).to_string().c_str());
  }
  if (out_file != nullptr) {
    const std::string json = harness::sweep_results_json(options, results);
    const bool wrote = std::fputs(json.c_str(), out_file) != EOF;
    const bool closed = std::fclose(out_file) == 0;
    std::string publish_error;
    // durable_replace fsyncs the data AND the directory around the rename:
    // a results file must never be lost to the page cache after the
    // campaign that produced it survived crashes on purpose.
    if (!wrote || !closed ||
        !harness::durable_replace(tmp_path, out_path, &publish_error)) {
      std::fprintf(stderr, "dtnsim: error writing '%s'%s%s\n", out_path.c_str(),
                   publish_error.empty() ? "" : ": ", publish_error.c_str());
      std::remove(tmp_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  // Loud end-of-campaign failure summary (the journals keep the failed
  // records, so `--resume` retries exactly these points).
  if (failed_points != 0) {
    std::fprintf(stderr, "dtnsim: %zu point(s) FAILED:\n", failed_points);
    for (const auto& point : results) {
      if (!point.exec.failed()) continue;
      const std::string label = point.overrides.empty() ? "(single point)"
                                                        : point.label();
      std::fprintf(stderr, "  %s: %s (after %d attempt(s))\n", label.c_str(),
                   point.exec.error.c_str(), point.exec.tries);
    }
    if (fleet) {
      std::fprintf(stderr, "dtnsim: shard journals kept under '%s'; rerun the "
                           "same --workers command with --resume to retry "
                           "exactly the failed/missing points\n",
                   shard_dir.c_str());
    } else if (!options.journal_path.empty()) {
      std::fprintf(stderr, "dtnsim: journal kept at '%s'; rerun with --resume "
                           "to retry the failed points\n",
                   options.journal_path.c_str());
    }
    return 1;
  }
  // Fully clean campaign: the results file supersedes the journals.
  if (fleet) {
    for (const auto& journal : shard_journals) std::remove(journal.c_str());
    std::remove(shard_dir.c_str());
  } else if (shard_count > 1) {
    // A standalone shard's journal is an INPUT to the campaign merge —
    // deleting it here would throw away this process's contribution.
    std::printf("shard journal kept at '%s' (input to the campaign merge)\n",
                options.journal_path.c_str());
  } else if (!options.journal_path.empty()) {
    std::remove(options.journal_path.c_str());
  }
  return 0;
}

/// `dtnsim journal <file>`: offline diagnosis of a campaign journal —
/// framing health (intact records, valid prefix, torn tail), the campaign
/// fingerprint shape, and the per-point record census. Every printed field
/// derives from the file's bytes alone (no wall times), so the output is
/// golden-testable. Exit 0 when the journal is intact, 1 when it is
/// missing/damaged (a torn tail is still safe to resume — the verdict line
/// says so).
int cmd_journal(const std::string& path) {
  const harness::JournalInspection info = harness::inspect_sweep_journal(path);
  if (info.missing) {
    std::fprintf(stderr, "dtnsim: journal '%s' does not exist\n", path.c_str());
    return 1;
  }
  if (info.io_error) {
    std::fprintf(stderr, "dtnsim: cannot read journal '%s'\n", path.c_str());
    return 1;
  }
  std::printf("journal '%s'\n", path.c_str());
  std::printf("  intact records: %zu (%llu byte(s) valid prefix)\n", info.records,
              static_cast<unsigned long long>(info.valid_bytes));
  if (info.dropped_bytes == 0) {
    std::printf("  torn tail:      none (clean EOF)\n");
  } else {
    std::printf("  torn tail:      %llu byte(s) dropped after the valid prefix\n",
                static_cast<unsigned long long>(info.dropped_bytes));
  }
  if (info.malformed_records != 0) {
    std::printf("  malformed:      %zu record(s) framed intact but unparsable\n",
                info.malformed_records);
  }
  if (info.campaign) {
    std::printf("  campaign:       %zu point(s) x %d seed(s), seed base %llu, "
                "%zu axis(es)\n",
                info.grid_points, info.seeds,
                static_cast<unsigned long long>(info.seed_base), info.axes);
    std::printf("  points:         %zu of %zu recorded (%zu ok, %zu failed)\n",
                info.points_recorded, info.grid_points, info.points_ok,
                info.points_failed);
    // Which shard selector the recorded indices imply — gcd inference, so
    // a partially-run shard still reads as its selector, not the grid.
    if (info.shard_modulus == 1) {
      std::printf("  shard:          whole grid (indices share no stride)\n");
    } else if (info.shard_modulus > 1) {
      std::printf("  shard:          index %% %zu == %zu (selector residue "
                  "implied by the recorded points)\n",
                  info.shard_modulus, info.shard_residue);
    } else if (info.points_recorded > 0) {
      std::printf("  shard:          undetermined (too few recorded points "
                  "to imply a stride)\n");
    }
  } else {
    std::printf("  campaign:       none (first record is not a dtnsim sweep "
                "fingerprint)\n");
  }
  if (info.intact()) {
    std::printf("  verdict:        INTACT (safe to resume or merge as-is)\n");
    return 0;
  }
  std::printf("  verdict:        DAMAGED (--resume keeps the valid prefix and "
              "recomputes the rest)\n");
  return 1;
}

int cmd_print(const std::string& path, const util::Flags& flags) {
  if (!check_flags(flags, {"set"})) return usage();
  const harness::ScenarioSpec spec =
      harness::load_spec_with_overrides(path, flags.get_list("set"));
  std::printf("%s", harness::to_config(spec).c_str());
  return 0;
}

int cmd_check(const std::string& path) {
  harness::ScenarioSpec spec;
  try {
    spec = harness::load_spec(path);
  } catch (const harness::SpecError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::fprintf(stderr, "%zu problem(s) in %s\n", e.diagnostics().size(), path.c_str());
    return 1;
  }
  try {
    harness::validate_spec(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: invalid scenario: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("%s: OK (%d nodes in %zu group(s), protocol %s, %.0f s)\n", path.c_str(),
              spec.node_count(), spec.groups.size(), spec.protocol.name.c_str(),
              spec.duration_s);
  return 0;
}

void print_names(const char* title, const std::vector<std::string>& names) {
  std::printf("%s:", title);
  for (const auto& n : names) std::printf(" %s", n.c_str());
  std::printf("\n");
}

int cmd_list() {
  print_names("protocols", routing::known_protocols());
  print_names("mobility models", mobility::mobility_model_names());
  print_names("map kinds", geo::map_kind_names());
  print_names("community sources", harness::community_source_names());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const auto& args = flags.positional();
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  // Every command takes at most one scenario file; extra positionals would
  // be silently skipped (e.g. `dtnsim check a.cfg b.cfg` "passing" b.cfg
  // unread), so reject them like unknown flags.
  const std::size_t max_args = (cmd == "list" || cmd == "serve") ? 1 : 2;
  if (args.size() > max_args) {
    std::fprintf(stderr, "dtnsim: unexpected argument '%s'\n",
                 args[max_args].c_str());
    return usage();
  }
  try {
    if (cmd == "list") {
      return check_flags(flags, {}) ? cmd_list() : usage();
    }
    if (cmd == "serve") return cmd_serve(flags);
    if (args.size() < 2) return usage();
    const std::string& path = args[1];
    if (cmd == "run") return cmd_run(path, flags);
    if (cmd == "sweep") {
      return cmd_sweep(path, flags, argc > 0 ? argv[0] : "dtnsim");
    }
    if (cmd == "journal") {
      return check_flags(flags, {}) ? cmd_journal(path) : usage();
    }
    if (cmd == "print") return cmd_print(path, flags);
    if (cmd == "check") {
      return check_flags(flags, {}) ? cmd_check(path) : usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dtnsim: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "dtnsim: unknown command '%s'\n", cmd.c_str());
  return usage();
}
