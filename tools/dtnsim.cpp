// dtnsim — the scenario-file driver: every experiment the library can
// express, runnable from a ONE-style config file with no C++ involved.
//
//   dtnsim run scenario.cfg [--set key=value]... [--seeds N]
//   dtnsim sweep scenario.cfg --axis protocol.name=EER,CR \
//                             --axis scenario.nodes=40,80 [--seeds N] [--threads T]
//                             [--out results.json]
//   dtnsim print scenario.cfg [--set key=value]...   # resolved canonical config
//   dtnsim check scenario.cfg                        # parse + validate, report diagnostics
//   dtnsim list                                      # registered protocols/models/maps
//
// `--set` applies single-key overrides after the file loads (repeatable,
// applied in order); `--axis key=v1,v2,...` adds one sweep dimension per
// flag (cross product, first axis outermost); `--out` writes the sweep's
// aggregated results as machine-readable JSON (stable "dtnsim-sweep/1"
// schema, see harness/sweep.hpp). Scenario-file grammar and the key
// vocabulary live in harness/spec_io.hpp and README.md.
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "harness/spec_io.hpp"
#include "harness/sweep.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/value_parse.hpp"

namespace {

using namespace dtn;

int usage() {
  std::fprintf(stderr,
               "usage: dtnsim <command> [args]\n"
               "  run   <scenario.cfg> [--set k=v]... [--seeds N] [--seed-base B]\n"
               "                       [--threads T] [--quiet]\n"
               "  sweep <scenario.cfg> [--axis k=v1,v2,..]... [--set k=v]...\n"
               "                       [--seeds N] [--seed-base B] [--threads T] [--quiet]\n"
               "                       [--out results.json]\n"
               "  print <scenario.cfg> [--set k=v]...\n"
               "  check <scenario.cfg>\n"
               "  list\n");
  return 2;
}

/// Strict numeric flag read: util::Flags falls back silently on garbage,
/// which is the wrong policy for an experiment driver — `--seeds abc`
/// must fail, not run one seed, and an out-of-range value must not be
/// narrowed into a different experiment. Returns false after printing a
/// diagnostic.
bool get_int_flag(const util::Flags& flags, const std::string& name,
                  std::int64_t fallback, std::int64_t lo, std::int64_t hi,
                  std::int64_t& out) {
  out = fallback;
  if (!flags.has(name)) return true;  // defaults are not range-checked
  if (!flags.parse_int(name, out)) {
    std::fprintf(stderr, "dtnsim: bad value '%s' for --%s (integer expected)\n",
                 flags.get_string(name, "").c_str(), name.c_str());
    return false;
  }
  if (out < lo || out > hi) {
    const std::string raw = flags.get_string(name, "");
    std::fprintf(stderr, "dtnsim: --%s %s out of range [%lld, %lld]\n", name.c_str(),
                 raw.c_str(), static_cast<long long>(lo), static_cast<long long>(hi));
    return false;
  }
  return true;
}

/// Strict flag policy: a misspelled flag must not silently run the
/// experiment with default parameters. Returns false (after printing the
/// offenders) when any flag is outside `allowed`.
bool check_flags(const util::Flags& flags, std::initializer_list<const char*> allowed) {
  const auto offenders = flags.unknown_flags(allowed);
  for (const auto& name : offenders) {
    std::fprintf(stderr, "dtnsim: unknown flag '--%s'\n", name.c_str());
  }
  return offenders.empty();
}

void print_point(const harness::PointResult& point) {
  util::TablePrinter table({"metric", "mean", "stddev", "seeds"});
  for (const auto metric :
       {harness::Metric::kDeliveryRatio, harness::Metric::kLatency,
        harness::Metric::kGoodput, harness::Metric::kControlMb, harness::Metric::kRelayed}) {
    table.new_row()
        .add_cell(harness::metric_name(metric))
        .add_cell(harness::metric_value(point, metric),
                  metric == harness::Metric::kLatency ? 1 : 4)
        .add_cell(metric == harness::Metric::kDeliveryRatio
                      ? point.delivery_ratio.stddev()
                  : metric == harness::Metric::kLatency   ? point.latency.stddev()
                  : metric == harness::Metric::kGoodput   ? point.goodput.stddev()
                  : metric == harness::Metric::kControlMb ? point.control_mb.stddev()
                                                          : point.relayed.stddev(),
                  4)
        .add_cell(static_cast<long long>(point.delivery_ratio.count()));
  }
  std::printf("%s", table.to_string().c_str());
}

int cmd_run(const std::string& path, const util::Flags& flags) {
  if (!check_flags(flags, {"set", "seeds", "seed-base", "threads", "quiet"})) {
    return usage();
  }
  harness::SpecSweepOptions options;
  options.base = harness::load_spec_with_overrides(path, flags.get_list("set"));
  std::int64_t seeds = 0;
  std::int64_t seed_base = 0;
  std::int64_t threads = 0;
  if (!get_int_flag(flags, "seeds", 1, 1, INT32_MAX, seeds) ||
      !get_int_flag(flags, "seed-base", static_cast<std::int64_t>(options.base.seed),
                    0, INT64_MAX, seed_base) ||
      !get_int_flag(flags, "threads", 0, 0, 4096, threads)) {
    return 2;
  }
  options.seeds = static_cast<int>(seeds);
  options.seed_base = static_cast<std::uint64_t>(seed_base);
  options.threads = static_cast<std::size_t>(threads);
  if (!flags.get_bool("quiet", false)) {
    options.progress = [](const std::string& label) {
      std::fprintf(stderr, "  done: %s\n", label.c_str());
    };
  }
  std::printf("scenario '%s': %d nodes, %.0f s, protocol %s, %d seed(s)\n",
              options.base.name.c_str(), options.base.node_count(),
              options.base.duration_s, options.base.protocol.name.c_str(),
              options.seeds);
  const auto results = harness::run_spec_sweep(options);
  if (results.empty() || results.front().result.delivery_ratio.count() == 0) {
    std::fprintf(stderr, "no runs executed (seeds = %d)\n", options.seeds);
    return 1;
  }
  print_point(results.front().result);
  return 0;
}

int cmd_sweep(const std::string& path, const util::Flags& flags) {
  if (!check_flags(flags,
                   {"set", "axis", "seeds", "seed-base", "threads", "quiet", "out"})) {
    return usage();
  }
  harness::SpecSweepOptions options;
  options.base = harness::load_spec_with_overrides(path, flags.get_list("set"));
  for (const auto& axis_arg : flags.get_list("axis")) {
    const auto [key, csv] = harness::split_assignment(axis_arg);
    harness::SweepAxis axis;
    axis.key = key;
    axis.values = util::split_csv(csv);
    if (axis.values.empty()) {
      std::fprintf(stderr, "axis '%s' has no values\n", key.c_str());
      return 2;
    }
    options.axes.push_back(std::move(axis));
  }
  std::int64_t seeds = 0;
  std::int64_t seed_base = 0;
  std::int64_t threads = 0;
  // seed-base default is the file's scenario.seed, same as `dtnsim run`,
  // so a one-point sweep and a plain run of the same cfg agree.
  if (!get_int_flag(flags, "seeds", 2, 1, INT32_MAX, seeds) ||
      !get_int_flag(flags, "seed-base", static_cast<std::int64_t>(options.base.seed),
                    0, INT64_MAX, seed_base) ||
      !get_int_flag(flags, "threads", 0, 0, 4096, threads)) {
    return 2;
  }
  options.seeds = static_cast<int>(seeds);
  options.seed_base = static_cast<std::uint64_t>(seed_base);
  options.threads = static_cast<std::size_t>(threads);
  if (!flags.get_bool("quiet", false)) {
    options.progress = [](const std::string& label) {
      std::fprintf(stderr, "  done: %s\n", label.c_str());
    };
  }
  // Open --out (via a sibling temp file) before the campaign runs: an
  // unwritable path must fail in seconds, not after hours of simulation
  // with the JSON discarded. The temp + rename keeps a pre-existing
  // results file intact until the new one is complete — a typo'd axis key
  // (which throws inside run_spec_sweep) or a short write (disk full)
  // must not wipe the previous campaign's results.
  const std::string out_path = flags.get_string("out", "");
  const std::string tmp_path = out_path + ".tmp";
  std::FILE* out_file = nullptr;
  if (!out_path.empty()) {
    out_file = std::fopen(tmp_path.c_str(), "w");
    if (out_file == nullptr) {
      std::fprintf(stderr, "dtnsim: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
  }
  std::size_t grid = 1;
  for (const auto& axis : options.axes) grid *= axis.values.size();
  std::printf("sweep '%s': %zu point(s) x %d seed(s)\n", options.base.name.c_str(),
              grid, options.seeds);
  std::vector<harness::SpecPointResult> results;
  try {
    results = harness::run_spec_sweep(options);
  } catch (...) {
    if (out_file != nullptr) {
      std::fclose(out_file);
      std::remove(tmp_path.c_str());
    }
    throw;
  }
  std::printf("\n%s", harness::sweep_table(results).to_string().c_str());
  if (out_file != nullptr) {
    const std::string json = harness::sweep_results_json(options, results);
    const bool wrote = std::fputs(json.c_str(), out_file) != EOF;
    const bool closed = std::fclose(out_file) == 0;
    if (!wrote || !closed || std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
      std::fprintf(stderr, "dtnsim: error writing '%s'\n", out_path.c_str());
      std::remove(tmp_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_print(const std::string& path, const util::Flags& flags) {
  if (!check_flags(flags, {"set"})) return usage();
  const harness::ScenarioSpec spec =
      harness::load_spec_with_overrides(path, flags.get_list("set"));
  std::printf("%s", harness::to_config(spec).c_str());
  return 0;
}

int cmd_check(const std::string& path) {
  harness::ScenarioSpec spec;
  try {
    spec = harness::load_spec(path);
  } catch (const harness::SpecError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::fprintf(stderr, "%zu problem(s) in %s\n", e.diagnostics().size(), path.c_str());
    return 1;
  }
  try {
    harness::validate_spec(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: invalid scenario: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("%s: OK (%d nodes in %zu group(s), protocol %s, %.0f s)\n", path.c_str(),
              spec.node_count(), spec.groups.size(), spec.protocol.name.c_str(),
              spec.duration_s);
  return 0;
}

void print_names(const char* title, const std::vector<std::string>& names) {
  std::printf("%s:", title);
  for (const auto& n : names) std::printf(" %s", n.c_str());
  std::printf("\n");
}

int cmd_list() {
  print_names("protocols", routing::known_protocols());
  print_names("mobility models", mobility::mobility_model_names());
  print_names("map kinds", geo::map_kind_names());
  print_names("community sources", harness::community_source_names());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags = util::Flags::parse(argc, argv);
  const auto& args = flags.positional();
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  // Every command takes at most one scenario file; extra positionals would
  // be silently skipped (e.g. `dtnsim check a.cfg b.cfg` "passing" b.cfg
  // unread), so reject them like unknown flags.
  const std::size_t max_args = cmd == "list" ? 1 : 2;
  if (args.size() > max_args) {
    std::fprintf(stderr, "dtnsim: unexpected argument '%s'\n",
                 args[max_args].c_str());
    return usage();
  }
  try {
    if (cmd == "list") {
      return check_flags(flags, {}) ? cmd_list() : usage();
    }
    if (args.size() < 2) return usage();
    const std::string& path = args[1];
    if (cmd == "run") return cmd_run(path, flags);
    if (cmd == "sweep") return cmd_sweep(path, flags);
    if (cmd == "print") return cmd_print(path, flags);
    if (cmd == "check") {
      return check_flags(flags, {}) ? cmd_check(path) : usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dtnsim: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "dtnsim: unknown command '%s'\n", cmd.c_str());
  return usage();
}
