# dtnsim CLI golden tests (ctest target `dtnsim_cli_golden`, label `fast`).
#
# Locks the user-facing diagnostic surface of the scenario-file driver:
#   - `check` on a cfg with unknown keys — the line-numbered nearest-key
#     suggestion output, exit 1;
#   - `check` on a cfg with unparsable values — exit 1;
#   - `check` on cfgs whose traffic section fails validation (inverted
#     interval; full_ttl_window with ttl >= duration) — exit 1 with the
#     explanatory diagnostic;
#   - `run` on a missing file — exit 1;
#   - `check` on EVERY shipped examples/*.cfg — exit 0 with its golden
#     summary line (a new example cfg must ship
#     tests/cli/expected/check_<name>.stdout alongside it);
#   - `sweep --resume` diagnostics — the no-journal-path usage error, the
#     missing-journal fresh-start note, the different-campaign refusal,
#     and the corrupt-tail recovery warning (goldens sweep_resume_*);
#   - nonsensical robustness knobs — negative --retries/--sync-every, a
#     zero --point-timeout, a --shard selector with i >= N or N == 0,
#     --shard combined with --workers, --workers without a journal anchor —
#     every one exits 2 (usage/config) with its pinned one-line stderr;
#   - the exit-code contract the worker supervision loop depends on:
#     0 = clean campaign, 1 = completed-with-failures (and runtime errors
#     like a missing file), 2 = usage/config error — each pinned by at
#     least one case in this file;
#   - `journal` inspection over the COMMITTED torn-tail fixture
#     tests/cli/torn.journal (byte counts in the output are only stable
#     for committed bytes — journal records embed wall-time hexfloats, so
#     a journal generated at test time would not golden) and over a
#     missing file.
# Golden files live in tests/cli/expected/. Commands run with the relevant
# directory as CWD so goldens contain relative paths only; the resume
# cases run inside a scratch dir under WORK_DIR so their journals never
# touch the source tree. A golden name of `-` skips that stream (used when
# the other stream carries the diagnostic under test and this one holds
# volatile campaign output).
#
# Invoked by CTest with -DDTNSIM=... -DSOURCE_DIR=... -DWORK_DIR=...
# (see CMakeLists.txt).

set(CLI_DIR ${SOURCE_DIR}/tests/cli)
set(EXPECTED_DIR ${CLI_DIR}/expected)

# Compares one captured stream against its golden file ("" = must be
# empty, "-" = unchecked).
function(check_stream label stream golden actual)
  if(golden STREQUAL "-")
    return()
  endif()
  if(golden STREQUAL "")
    if(NOT actual STREQUAL "")
      message(FATAL_ERROR "${label}: expected empty ${stream}, got:\n${actual}")
    endif()
    return()
  endif()
  if(NOT EXISTS ${EXPECTED_DIR}/${golden})
    message(FATAL_ERROR "${label}: golden file ${golden} is missing — "
                        "generate it from verified output")
  endif()
  file(READ ${EXPECTED_DIR}/${golden} want)
  if(NOT actual STREQUAL want)
    message(FATAL_ERROR "${label}: ${stream} diverged from ${golden}\n"
                        "--- expected ---\n${want}\n--- actual ---\n${actual}")
  endif()
endfunction()

# Runs dtnsim with ARGN in `workdir`; requires exit code `exit_expect`,
# stdout equal to golden `out_golden` (or empty when ""), stderr equal to
# golden `err_golden` (or empty when "").
function(golden_case label workdir exit_expect out_golden err_golden)
  execute_process(COMMAND ${DTNSIM} ${ARGN} WORKING_DIRECTORY ${workdir}
                  RESULT_VARIABLE rv OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rv STREQUAL "${exit_expect}")
    message(FATAL_ERROR
            "${label}: exit code ${rv}, expected ${exit_expect}\nstderr:\n${err}")
  endif()
  check_stream("${label}" stdout "${out_golden}" "${out}")
  check_stream("${label}" stderr "${err_golden}" "${err}")
endfunction()

golden_case("check unknown_key.cfg" ${CLI_DIR} 1
            "" check_unknown_key.stderr
            check unknown_key.cfg)
golden_case("check bad_value.cfg" ${CLI_DIR} 1
            "" check_bad_value.stderr
            check bad_value.cfg)
golden_case("check bad_traffic.cfg" ${CLI_DIR} 1
            "" check_bad_traffic.stderr
            check bad_traffic.cfg)
golden_case("check bad_ttl_window.cfg" ${CLI_DIR} 1
            "" check_bad_ttl_window.stderr
            check bad_ttl_window.cfg)
golden_case("run missing file" ${CLI_DIR} 1
            "" run_missing_file.stderr
            run nosuch.cfg)

file(GLOB example_cfgs ${SOURCE_DIR}/examples/*.cfg)
if(example_cfgs STREQUAL "")
  message(FATAL_ERROR "no examples/*.cfg found — glob broken?")
endif()
foreach(cfg ${example_cfgs})
  get_filename_component(name ${cfg} NAME_WE)
  golden_case("check examples/${name}.cfg" ${SOURCE_DIR} 0
              check_${name}.stdout ""
              check examples/${name}.cfg)
endforeach()

# ---- robustness-knob validation (all exit 2: usage/config errors) -----------
# The `--flag=-1` spelling is deliberate: it pins that negative values are
# parsed as values (not mistaken for flags) and then rejected by range.
golden_case("sweep --retries=-1" ${CLI_DIR} 2
            "" sweep_bad_retries.stderr
            sweep resume.cfg --retries=-1)
golden_case("sweep --sync-every=-1" ${CLI_DIR} 2
            "" sweep_bad_sync_every.stderr
            sweep resume.cfg --sync-every=-1)
golden_case("sweep --point-timeout 0" ${CLI_DIR} 2
            "" sweep_bad_point_timeout.stderr
            sweep resume.cfg --point-timeout 0)
golden_case("sweep --shard 3/3" ${CLI_DIR} 2
            "" sweep_bad_shard_range.stderr
            sweep resume.cfg --shard 3/3)
golden_case("sweep --shard 0/0" ${CLI_DIR} 2
            "" sweep_bad_shard_zero.stderr
            sweep resume.cfg --shard 0/0)
golden_case("sweep --shard with --workers" ${CLI_DIR} 2
            "" sweep_shard_workers_conflict.stderr
            sweep resume.cfg --shard 0/2 --workers 2)
golden_case("sweep --workers without journal anchor" ${CLI_DIR} 2
            "" sweep_workers_no_out.stderr
            sweep resume.cfg --workers 2)

# ---- multi-host fabric validation (all exit 2, refused before any I/O) ------
golden_case("serve without --port" ${CLI_DIR} 2
            "" serve_no_port.stderr
            serve)
golden_case("serve --port out of range" ${CLI_DIR} 2
            "" serve_bad_port.stderr
            serve --port 70000)
golden_case("sweep malformed --hosts entry" ${CLI_DIR} 2
            "" sweep_bad_hosts.stderr
            sweep resume.cfg --hosts 127.0.0.1)
golden_case("sweep --hosts without journal anchor" ${CLI_DIR} 2
            "" sweep_hosts_no_out.stderr
            sweep resume.cfg --hosts 127.0.0.1:19)
golden_case("sweep --shard with --hosts" ${CLI_DIR} 2
            "" sweep_shard_hosts_conflict.stderr
            sweep resume.cfg --shard 0/2 --hosts 127.0.0.1:19)

# ---- journal inspection ------------------------------------------------------
# The committed torn-tail fixture: a real two-point campaign journal (one
# ok record, one failed record) with garbage appended behind the valid
# prefix. `journal` must report the campaign shape, the torn tail, and the
# DAMAGED verdict — exit 1. A missing journal is also exit 1.
golden_case("journal torn fixture" ${CLI_DIR} 1
            journal_torn.stdout ""
            journal torn.journal)
golden_case("journal missing file" ${CLI_DIR} 1
            "" journal_missing.stderr
            journal nosuch.journal)

# ---- sweep --resume diagnostics ---------------------------------------------
# All campaign runs use the tiny tests/cli/resume.cfg fixture and live in a
# scratch dir so journals/results never land in the source tree. Campaign
# stdout (tables, point counts) is skipped with `-`; the goldens pin the
# stderr diagnostics, which are the surface under test.
if(NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "dtnsim_cli_golden needs -DWORK_DIR=<build scratch root>")
endif()
set(RESUME_DIR ${WORK_DIR}/cli_golden_resume)
file(REMOVE_RECURSE ${RESUME_DIR})
file(MAKE_DIRECTORY ${RESUME_DIR})
set(FIXTURE ${CLI_DIR}/resume.cfg)

# --resume with nowhere to look for a journal: usage error before any
# simulation runs.
golden_case("sweep --resume without journal path" ${RESUME_DIR} 2
            "" sweep_resume_no_journal.stderr
            sweep ${FIXTURE} --resume --quiet)

# --resume with a journal path that does not exist yet: noted as a fresh
# start, campaign runs to completion.
golden_case("sweep --resume missing journal" ${RESUME_DIR} 0
            - sweep_resume_fresh.stderr
            sweep ${FIXTURE} --seeds 1 --quiet --out fresh.json --resume)

# A journal written by a DIFFERENT campaign (axis values changed) must be
# refused loudly, never silently mixed in. The stale journal survives its
# campaign because the injected fault leaves a failed point behind.
golden_case("sweep: seed a stale journal" ${RESUME_DIR} 1
            - -
            sweep ${FIXTURE} --axis protocol.copies=2,4 --seeds 1 --quiet
            --journal stale.j --fault throw@point=1:fires=99)
golden_case("sweep --resume foreign journal" ${RESUME_DIR} 1
            - sweep_resume_stale.stderr
            sweep ${FIXTURE} --axis protocol.copies=2,8 --seeds 1 --quiet
            --journal stale.j --resume)

# A corrupt/truncated journal tail is dropped with a warning and the
# affected points recomputed — recovery, not refusal. (7 garbage bytes so
# the byte count in the golden is deterministic.)
golden_case("sweep: seed a torn journal" ${RESUME_DIR} 1
            - -
            sweep ${FIXTURE} --axis protocol.copies=2,4 --seeds 1 --quiet
            --journal torn.j --fault throw@point=1:fires=99)
file(APPEND ${RESUME_DIR}/torn.j "garbage")
golden_case("sweep --resume corrupt tail" ${RESUME_DIR} 0
            - sweep_resume_corrupt_tail.stderr
            sweep ${FIXTURE} --axis protocol.copies=2,4 --seeds 1 --quiet
            --journal torn.j --resume)
