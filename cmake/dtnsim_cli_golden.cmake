# dtnsim CLI golden tests (ctest target `dtnsim_cli_golden`, label `fast`).
#
# Locks the user-facing diagnostic surface of the scenario-file driver:
#   - `check` on a cfg with unknown keys — the line-numbered nearest-key
#     suggestion output, exit 1;
#   - `check` on a cfg with unparsable values — exit 1;
#   - `run` on a missing file — exit 1;
#   - `check` on EVERY shipped examples/*.cfg — exit 0 with its golden
#     summary line (a new example cfg must ship
#     tests/cli/expected/check_<name>.stdout alongside it).
# Golden files live in tests/cli/expected/. Commands run with the relevant
# directory as CWD so goldens contain relative paths only.
#
# Invoked by CTest with -DDTNSIM=... -DSOURCE_DIR=... (see CMakeLists.txt).

set(CLI_DIR ${SOURCE_DIR}/tests/cli)
set(EXPECTED_DIR ${CLI_DIR}/expected)

# Compares one captured stream against its golden file ("" = must be empty).
function(check_stream label stream golden actual)
  if(golden STREQUAL "")
    if(NOT actual STREQUAL "")
      message(FATAL_ERROR "${label}: expected empty ${stream}, got:\n${actual}")
    endif()
    return()
  endif()
  if(NOT EXISTS ${EXPECTED_DIR}/${golden})
    message(FATAL_ERROR "${label}: golden file ${golden} is missing — "
                        "generate it from verified output")
  endif()
  file(READ ${EXPECTED_DIR}/${golden} want)
  if(NOT actual STREQUAL want)
    message(FATAL_ERROR "${label}: ${stream} diverged from ${golden}\n"
                        "--- expected ---\n${want}\n--- actual ---\n${actual}")
  endif()
endfunction()

# Runs dtnsim with ARGN in `workdir`; requires exit code `exit_expect`,
# stdout equal to golden `out_golden` (or empty when ""), stderr equal to
# golden `err_golden` (or empty when "").
function(golden_case label workdir exit_expect out_golden err_golden)
  execute_process(COMMAND ${DTNSIM} ${ARGN} WORKING_DIRECTORY ${workdir}
                  RESULT_VARIABLE rv OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rv STREQUAL "${exit_expect}")
    message(FATAL_ERROR
            "${label}: exit code ${rv}, expected ${exit_expect}\nstderr:\n${err}")
  endif()
  check_stream("${label}" stdout "${out_golden}" "${out}")
  check_stream("${label}" stderr "${err_golden}" "${err}")
endfunction()

golden_case("check unknown_key.cfg" ${CLI_DIR} 1
            "" check_unknown_key.stderr
            check unknown_key.cfg)
golden_case("check bad_value.cfg" ${CLI_DIR} 1
            "" check_bad_value.stderr
            check bad_value.cfg)
golden_case("run missing file" ${CLI_DIR} 1
            "" run_missing_file.stderr
            run nosuch.cfg)

file(GLOB example_cfgs ${SOURCE_DIR}/examples/*.cfg)
if(example_cfgs STREQUAL "")
  message(FATAL_ERROR "no examples/*.cfg found — glob broken?")
endif()
foreach(cfg ${example_cfgs})
  get_filename_component(name ${cfg} NAME_WE)
  golden_case("check examples/${name}.cfg" ${SOURCE_DIR} 0
              check_${name}.stdout ""
              check examples/${name}.cfg)
endforeach()
