# bench_smoke driver (ctest target `bench_smoke`, label `slow`).
#
# 1. Smoke-runs every tracked bench binary at tiny sizes into WORK_DIR so
#    the benches cannot bit-rot (their A/B equivalence cross-checks run).
# 2. Validates the COMMITTED perf history at the repo root: each
#    BENCH_*.json must exist and carry its required fields, so a bench
#    refactor cannot silently stop emitting a tracked number.
#
# Invoked by CTest with -DBENCH_WORLD_STEP=..., -DBENCH_SWEEP=...,
# -DSOURCE_DIR=..., -DWORK_DIR=... (see CMakeLists.txt).

function(run_bench label)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "bench_smoke: ${label} failed with exit code ${rv}")
  endif()
endfunction()

function(require_fields json_file)
  set(path ${SOURCE_DIR}/${json_file})
  if(NOT EXISTS ${path})
    message(FATAL_ERROR "bench_smoke: committed ${json_file} is missing")
  endif()
  file(READ ${path} content)
  foreach(field ${ARGN})
    string(FIND "${content}" "\"${field}\"" at)
    if(at EQUAL -1)
      message(FATAL_ERROR
              "bench_smoke: ${json_file} is missing required field \"${field}\"")
    endif()
  endforeach()
endfunction()

run_bench(bench_world_step ${BENCH_WORLD_STEP} --steps 200 --smoke
          --out ${WORK_DIR}/BENCH_world_step.smoke.json)
run_bench(bench_sweep ${BENCH_SWEEP} --smoke
          --out ${WORK_DIR}/BENCH_sweep.smoke.json)

require_fields(BENCH_world_step.json
               bench workload steps points legacy_steps_per_sec
               incremental_steps_per_sec speedup buffer_pressure
               event_kernel fixed_steps_per_sec event_steps_per_sec
               allocs_per_step)
require_fields(BENCH_sweep.json
               bench campaign runs legacy_runs_per_sec reused_runs_per_sec
               legacy_points_per_sec reused_points_per_sec
               speedup aggregates_identical allocs_per_reused_seed
               hub_load hub_runs_per_sec hub_points_per_sec)
