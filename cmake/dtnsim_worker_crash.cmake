# Worker-crash recovery for the multi-process campaign fabric (ctest
# target dtnsim_worker_crash, label `fast` — runs in the sanitizer sweep).
#
# The acceptance property of `dtnsim sweep --workers N`, proven with a
# REAL SIGKILL delivered inside a real fork/exec'd worker (the in-process
# shard/merge properties live in harness_sweep_shard_test):
#
#   1. run the campaign single-process                      -> clean.json
#   2. run it with `--workers 3 --fault kill@point=2`: the worker that
#      owns grid point 2 raises SIGKILL mid-shard; the driver must notice
#      the signal death, restart that shard (resuming its journal), finish
#      the campaign with exit 0, merge, and remove the shard work dir
#   3. strip the volatile execution metadata (every line containing
#      `"exec` — the documented filterability contract of dtnsim-sweep/1)
#      from both files and require them BYTE-IDENTICAL
#   4. degrade gracefully: a shard whose points fail past its per-point
#      retries completes the campaign with exit 1 and KEEPS the shard
#      journals; rerunning the same fleet with `--resume` (fault gone)
#      retries exactly the gap and converges to the same bytes
#
# Invoked by CTest with -DDTNSIM=... -DSOURCE_DIR=... -DWORK_DIR=...
# (see CMakeLists.txt).

foreach(var DTNSIM SOURCE_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "dtnsim_worker_crash needs -D${var}=...")
  endif()
endforeach()

set(SCRATCH ${WORK_DIR}/worker_crash)
file(REMOVE_RECURSE ${SCRATCH})
file(MAKE_DIRECTORY ${SCRATCH})
set(FIXTURE ${SOURCE_DIR}/tests/cli/resume.cfg)
set(SWEEP_ARGS sweep ${FIXTURE} --axis protocol.copies=2,4,8 --seeds 2 --quiet)

function(read_filtered path out_var)
  file(STRINGS ${path} lines)
  set(kept "")
  foreach(line IN LISTS lines)
    if(NOT line MATCHES "\"exec")
      string(APPEND kept "${line}\n")
    endif()
  endforeach()
  set(${out_var} "${kept}" PARENT_SCOPE)
endfunction()

# 1. Uninterrupted single-process reference campaign.
execute_process(COMMAND ${DTNSIM} ${SWEEP_ARGS} --out clean.json
                WORKING_DIRECTORY ${SCRATCH}
                RESULT_VARIABLE rv OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rv STREQUAL "0")
  message(FATAL_ERROR "clean campaign failed (exit ${rv}):\n${err}")
endif()

# 2. The fleet, with the worker owning point 2 SIGKILLed mid-shard. The
#    driver must restart it and still finish clean.
execute_process(COMMAND ${DTNSIM} ${SWEEP_ARGS} --out fleet.json --workers 3
                        --fault kill@point=2
                WORKING_DIRECTORY ${SCRATCH}
                RESULT_VARIABLE rv OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rv STREQUAL "0")
  message(FATAL_ERROR "fleet campaign with a SIGKILLed worker did not recover "
                      "(exit ${rv}):\nstdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT err MATCHES "died on signal 9")
  message(FATAL_ERROR "SIGKILL never fired inside a worker — the fault was "
                      "not propagated:\n${err}")
endif()
if(NOT err MATCHES "restarting shard")
  message(FATAL_ERROR "driver never restarted the killed shard:\n${err}")
endif()
if(EXISTS ${SCRATCH}/fleet.json.journal.shards)
  message(FATAL_ERROR "clean fleet campaign left its shard work dir behind")
endif()

# 3. Bit-for-bit equivalence modulo the volatile `"exec` lines.
read_filtered(${SCRATCH}/clean.json clean)
read_filtered(${SCRATCH}/fleet.json fleet)
if(NOT clean STREQUAL fleet)
  message(FATAL_ERROR "fleet aggregates diverge from the single-process "
                      "campaign\n--- clean ---\n${clean}\n--- fleet ---\n"
                      "${fleet}")
endif()
if(clean STREQUAL "")
  message(FATAL_ERROR "filtered results are empty — the equivalence check "
                      "compared nothing")
endif()

# 4. Graceful degradation: point 1's attempts always throw, so its shard
#    completes with exit 1 (completed-with-failures — no restart), the
#    campaign publishes the survivors with exit 1, and the journals stay.
execute_process(COMMAND ${DTNSIM} ${SWEEP_ARGS} --out degraded.json --workers 3
                        --worker-retries 1 --fault throw@point=1:fires=99
                WORKING_DIRECTORY ${SCRATCH}
                RESULT_VARIABLE rv OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rv STREQUAL "1")
  message(FATAL_ERROR "degraded fleet campaign exited ${rv}, expected 1:\n${err}")
endif()
if(NOT err MATCHES "1 point\\(s\\) FAILED")
  message(FATAL_ERROR "degraded campaign did not report its failed point:\n${err}")
endif()
if(NOT EXISTS ${SCRATCH}/degraded.json.journal.shards/shard-1.journal)
  message(FATAL_ERROR "degraded campaign did not keep its shard journals — "
                      "nothing left to resume")
endif()
if(NOT EXISTS ${SCRATCH}/degraded.json)
  message(FATAL_ERROR "degraded campaign refused to publish the surviving "
                      "points")
endif()

# Resume the gap (fault gone): only the failed point reruns, exit 0, and
# the merged bytes converge to the reference.
execute_process(COMMAND ${DTNSIM} ${SWEEP_ARGS} --out degraded.json --workers 3
                        --resume
                WORKING_DIRECTORY ${SCRATCH}
                RESULT_VARIABLE rv OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rv STREQUAL "0")
  message(FATAL_ERROR "fleet --resume after degradation failed (exit ${rv}):\n${err}")
endif()
if(EXISTS ${SCRATCH}/degraded.json.journal.shards)
  message(FATAL_ERROR "successful fleet resume left the shard work dir behind")
endif()
read_filtered(${SCRATCH}/degraded.json degraded)
if(NOT clean STREQUAL degraded)
  message(FATAL_ERROR "degrade-then-resume aggregates diverge from the "
                      "single-process campaign\n--- clean ---\n${clean}\n"
                      "--- resumed ---\n${degraded}")
endif()
message(STATUS "worker-crash recovery and degrade-then-resume equivalence hold")
