# Kill–resume equivalence for `dtnsim sweep` (ctest targets
# dtnsim_crash_resume_t1 / _t3, label `fast` — runs in the sanitizer
# sweep).
#
# The acceptance property of the crash-safe campaign layer, proven with a
# REAL SIGKILL rather than in-process truncation games (those live in
# harness_journal_property_test):
#
#   1. run the campaign cleanly                       -> clean.json
#   2. rerun it with `--fault kill@point=2`: the process raises SIGKILL
#      the moment the journal record for point 2 hits the disk — a crash
#      mid-campaign with completed work behind it
#   3. `--resume` the killed campaign                 -> crash.json
#   4. strip the volatile execution metadata (every line containing
#      `"exec` — the documented filterability contract of dtnsim-sweep/1)
#      from both files and require them BYTE-IDENTICAL
#
# Run at --threads 1 and --threads 3 (the THREADS cache var) so both the
# serial path and the pool path honor the journal contract.
#
# Invoked by CTest with -DDTNSIM=... -DSOURCE_DIR=... -DWORK_DIR=...
# -DTHREADS=N (see CMakeLists.txt).

foreach(var DTNSIM SOURCE_DIR WORK_DIR THREADS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "dtnsim_crash_resume needs -D${var}=...")
  endif()
endforeach()

set(SCRATCH ${WORK_DIR}/crash_resume_t${THREADS})
file(REMOVE_RECURSE ${SCRATCH})
file(MAKE_DIRECTORY ${SCRATCH})
set(FIXTURE ${SOURCE_DIR}/tests/cli/resume.cfg)
set(SWEEP_ARGS sweep ${FIXTURE} --axis protocol.copies=2,4,8 --seeds 2
               --threads ${THREADS} --quiet)

# 1. Uninterrupted reference campaign.
execute_process(COMMAND ${DTNSIM} ${SWEEP_ARGS} --out clean.json
                WORKING_DIRECTORY ${SCRATCH}
                RESULT_VARIABLE rv OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rv STREQUAL "0")
  message(FATAL_ERROR "clean campaign failed (exit ${rv}):\n${err}")
endif()
if(EXISTS ${SCRATCH}/clean.json.journal)
  message(FATAL_ERROR "clean campaign left its journal behind — a fully "
                      "successful sweep must remove it")
endif()

# 2. The same campaign, SIGKILLed right after point 2's record is durable.
execute_process(COMMAND ${DTNSIM} ${SWEEP_ARGS} --out crash.json
                        --fault kill@point=2
                WORKING_DIRECTORY ${SCRATCH}
                RESULT_VARIABLE rv OUTPUT_QUIET ERROR_QUIET)
if(rv STREQUAL "0")
  message(FATAL_ERROR "kill-faulted campaign exited 0 — SIGKILL never fired")
endif()
if(EXISTS ${SCRATCH}/crash.json)
  message(FATAL_ERROR "killed campaign published crash.json — results must "
                      "only appear on completion")
endif()
if(NOT EXISTS ${SCRATCH}/crash.json.journal)
  message(FATAL_ERROR "killed campaign left no journal — nothing to resume")
endif()

# 3. Resume: recomputes only the missing points.
execute_process(COMMAND ${DTNSIM} ${SWEEP_ARGS} --out crash.json --resume
                WORKING_DIRECTORY ${SCRATCH}
                RESULT_VARIABLE rv OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rv STREQUAL "0")
  message(FATAL_ERROR "resume failed (exit ${rv}):\n${err}")
endif()
if(NOT out MATCHES "resumed [1-9][0-9]* completed point")
  message(FATAL_ERROR "resume recomputed everything — the journal replay "
                      "found no completed points:\n${out}")
endif()
if(EXISTS ${SCRATCH}/crash.json.journal)
  message(FATAL_ERROR "successful resume left the journal behind")
endif()

# 4. Bit-for-bit equivalence modulo the volatile `"exec` lines.
function(read_filtered path out_var)
  file(STRINGS ${path} lines)
  set(kept "")
  foreach(line IN LISTS lines)
    if(NOT line MATCHES "\"exec")
      string(APPEND kept "${line}\n")
    endif()
  endforeach()
  set(${out_var} "${kept}" PARENT_SCOPE)
endfunction()

read_filtered(${SCRATCH}/clean.json clean)
read_filtered(${SCRATCH}/crash.json crashed)
if(NOT clean STREQUAL crashed)
  message(FATAL_ERROR "resumed aggregates diverge from the uninterrupted "
                      "campaign\n--- clean ---\n${clean}\n--- resumed ---\n"
                      "${crashed}")
endif()
if(clean STREQUAL "")
  message(FATAL_ERROR "filtered results are empty — the equivalence check "
                      "compared nothing")
endif()
message(STATUS "crash-resume equivalence holds at --threads ${THREADS}")
